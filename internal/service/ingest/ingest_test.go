package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// ingestTestGraph is big enough that its DMGB encoding spans several small
// chunks.
func ingestTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.ErdosRenyi(400, 2400, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestManager(t testing.TB, mutate func(*Config)) (*Manager, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := Config{
		TTL:      time.Minute,
		Store:    NewStore(64<<20, reg),
		Registry: reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m := NewManager(cfg)
	t.Cleanup(m.Stop)
	return m, reg
}

// chunksOf splits enc into fixed-size chunks.
func chunksOf(enc []byte, size int64) [][]byte {
	var out [][]byte
	for off := int64(0); off < int64(len(enc)); off += size {
		end := off + size
		if end > int64(len(enc)) {
			end = int64(len(enc))
		}
		out = append(out, enc[off:end])
	}
	return out
}

func mustAppend(t *testing.T, m *Manager, s *session, idx int, data []byte) *Status {
	t.Helper()
	st, err := m.Append(s, idx, data, "")
	if err != nil {
		t.Fatalf("append chunk %d: %v", idx, err)
	}
	return st
}

func mustComplete(t *testing.T, m *Manager, s *session, chunks int) *Status {
	t.Helper()
	st, err := m.Complete(s, chunks, nil)
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	return st
}

func TestUploadInOrder(t *testing.T) {
	m, _ := newTestManager(t, nil)
	g := ingestTestGraph(t)
	enc, err := graph.EncodeDMGB(g)
	if err != nil {
		t.Fatal(err)
	}
	chunks := chunksOf(enc, 2048)
	if len(chunks) < 4 {
		t.Fatalf("want >=4 chunks, got %d (grow the test graph)", len(chunks))
	}
	s, err := m.Open(2048)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chunks {
		st := mustAppend(t, m, s, i, c)
		if i == 0 && st.Fingerprint != graph.Fingerprint(g) {
			t.Fatalf("after chunk 0 the declared fingerprint should be visible, got %q", st.Fingerprint)
		}
	}
	st := mustComplete(t, m, s, len(chunks))
	if st.State != StateComplete {
		t.Fatalf("state %s, want complete", st.State)
	}
	if st.GraphRef != graph.Fingerprint(g) {
		t.Fatalf("graph_ref %s, want the fingerprint", st.GraphRef)
	}
	got, ok := m.cfg.Store.Get(st.GraphRef)
	if !ok {
		t.Fatal("completed graph not in the store")
	}
	if graph.Fingerprint(got) != graph.Fingerprint(g) {
		t.Fatal("stored graph differs")
	}
}

func TestUploadOutOfOrderAndReplay(t *testing.T) {
	m, reg := newTestManager(t, nil)
	g := ingestTestGraph(t)
	enc, _ := graph.EncodeDMGB(g)
	chunks := chunksOf(enc, 2048)
	s, err := m.Open(2048)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse order: nothing can feed until chunk 0 lands last.
	for i := len(chunks) - 1; i >= 0; i-- {
		mustAppend(t, m, s, i, chunks[i])
	}
	// Duplicate replay of a middle chunk is idempotent.
	before := m.Status(s).ReceivedBytes
	st := mustAppend(t, m, s, 1, chunks[1])
	if st.ReceivedBytes != before {
		t.Fatalf("replay changed received bytes: %d -> %d", before, st.ReceivedBytes)
	}
	if v, _ := reg.Snapshot().Counters["ingest.chunks_replayed"]; v != 1 {
		t.Fatalf("chunks_replayed = %d, want 1", v)
	}
	// Conflicting replay is rejected.
	bogus := append([]byte(nil), chunks[1]...)
	bogus[0] ^= 0xff
	if _, err := m.Append(s, 1, bogus, ""); err == nil {
		t.Fatal("conflicting replay accepted")
	} else if ce := err.(*ChunkError); ce.Code != http.StatusConflict {
		t.Fatalf("conflicting replay status %d, want 409", ce.Code)
	}
	st = mustComplete(t, m, s, len(chunks))
	if st.State != StateComplete || st.GraphRef != graph.Fingerprint(g) {
		t.Fatalf("status %+v after out-of-order upload", st)
	}
}

func TestUploadChecksumEnforced(t *testing.T) {
	m, _ := newTestManager(t, nil)
	g := ingestTestGraph(t)
	enc, _ := graph.EncodeDMGB(g)
	chunks := chunksOf(enc, 2048)
	s, _ := m.Open(2048)
	sum := sha256.Sum256(chunks[0])
	if _, err := m.Append(s, 0, chunks[0], hex.EncodeToString(sum[:])); err != nil {
		t.Fatalf("correct checksum rejected: %v", err)
	}
	wrong := sha256.Sum256([]byte("not the chunk"))
	_, err := m.Append(s, 1, chunks[1], hex.EncodeToString(wrong[:]))
	if err == nil {
		t.Fatal("wrong checksum accepted")
	}
	if ce := err.(*ChunkError); ce.Code != http.StatusBadRequest {
		t.Fatalf("checksum mismatch status %d, want 400", ce.Code)
	}
}

func TestUploadShortChunkRules(t *testing.T) {
	m, _ := newTestManager(t, nil)
	s, _ := m.Open(2048)
	shortChunk := make([]byte, 100)
	full := make([]byte, 2048)
	mustAppend(t, m, s, 3, shortChunk) // provisional last chunk
	if _, err := m.Append(s, 4, full, ""); err == nil {
		t.Fatal("chunk beyond the short chunk accepted")
	}
	if _, err := m.Append(s, 2, make([]byte, 50), ""); err == nil {
		t.Fatal("second short chunk accepted")
	}
	mustAppend(t, m, s, 2, full) // filling below the short chunk is fine
}

func TestUploadTTLExpiryMidUpload(t *testing.T) {
	m, reg := newTestManager(t, func(c *Config) {
		c.TTL = 40 * time.Millisecond
		c.SweepEvery = 10 * time.Millisecond
	})
	g := ingestTestGraph(t)
	enc, _ := graph.EncodeDMGB(g)
	chunks := chunksOf(enc, 2048)
	s, err := m.Open(2048)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, m, s, 0, chunks[0])
	id := s.id

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.lookup(id); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not swept after TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := reg.Snapshot().Counters["ingest.sessions_expired"]; v != 1 {
		t.Fatalf("sessions_expired = %d, want 1", v)
	}
	// The abandoned session's goroutines must have been released: its
	// decoder saw the aborted pipe.
	select {
	case <-s.decodedCh:
	case <-time.After(2 * time.Second):
		t.Fatal("decoder still running after expiry")
	}
}

func TestUploadShortCircuitOnKnownFingerprint(t *testing.T) {
	m, reg := newTestManager(t, nil)
	g := ingestTestGraph(t)
	fp := graph.Fingerprint(g)
	m.cfg.Store.Put(fp, g) // daemon already holds the graph
	enc, _ := graph.EncodeDMGB(g)
	chunks := chunksOf(enc, 2048)

	s, _ := m.Open(2048)
	st := mustAppend(t, m, s, 0, chunks[0])
	if st.State != StateShortCircuit {
		t.Fatalf("state after chunk 0 = %s, want short_circuit", st.State)
	}
	if st.GraphRef != fp {
		t.Fatalf("short-circuit graph_ref %q, want %s", st.GraphRef, fp)
	}
	if st.ReceivedChunks != 1 {
		t.Fatalf("short circuit after %d chunks, want 1", st.ReceivedChunks)
	}
	// Further chunks and completion are answered with the settled status,
	// not errors — a racing client drains gracefully.
	st = mustAppend(t, m, s, 1, chunks[1])
	if st.State != StateShortCircuit {
		t.Fatalf("chunk after short circuit flipped state to %s", st.State)
	}
	st = mustComplete(t, m, s, len(chunks))
	if st.State != StateShortCircuit || st.GraphRef != fp {
		t.Fatalf("complete after short circuit: %+v", st)
	}
	if v := reg.Snapshot().Counters["ingest.short_circuits"]; v != 1 {
		t.Fatalf("short_circuits = %d, want 1", v)
	}
}

func TestUploadTextGraphNoShortCircuit(t *testing.T) {
	// Text uploads carry no declared fingerprint; they decode fully and
	// complete normally.
	m, _ := newTestManager(t, nil)
	g := ingestTestGraph(t)
	var enc []byte
	{
		var b writerBuffer
		if err := graph.WriteText(&b, g); err != nil {
			t.Fatal(err)
		}
		enc = b.data
	}
	chunks := chunksOf(enc, 4096)
	s, _ := m.Open(4096)
	for i, c := range chunks {
		mustAppend(t, m, s, i, c)
	}
	st := mustComplete(t, m, s, len(chunks))
	if st.State != StateComplete || st.GraphRef != graph.Fingerprint(g) {
		t.Fatalf("text upload: %+v", st)
	}
}

type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func TestUploadCorruptStreamFails(t *testing.T) {
	m, _ := newTestManager(t, nil)
	g := ingestTestGraph(t)
	enc, _ := graph.EncodeDMGB(g)
	enc[len(enc)-1] ^= 0x01 // break the last weight; fingerprint mismatch
	chunks := chunksOf(enc, 2048)
	s, _ := m.Open(2048)
	for i, c := range chunks {
		mustAppend(t, m, s, i, c)
	}
	_, err := m.Complete(s, len(chunks), nil)
	if err == nil {
		t.Fatal("corrupt stream completed")
	}
	ce := err.(*ChunkError)
	if ce.Code != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt stream status %d, want 422", ce.Code)
	}
	if m.Status(s).State != StateFailed {
		t.Fatalf("state %s, want failed", m.Status(s).State)
	}
}

func TestUploadIncompleteRejected(t *testing.T) {
	m, _ := newTestManager(t, nil)
	g := ingestTestGraph(t)
	enc, _ := graph.EncodeDMGB(g)
	chunks := chunksOf(enc, 2048)
	s, _ := m.Open(2048)
	for i, c := range chunks {
		if i == 2 {
			continue // hole
		}
		mustAppend(t, m, s, i, c)
	}
	_, err := m.Complete(s, len(chunks), nil)
	if err == nil {
		t.Fatal("completed with a missing chunk")
	}
	if ce := err.(*ChunkError); ce.Code != http.StatusConflict {
		t.Fatalf("missing chunk status %d, want 409", ce.Code)
	}
	// The session is still uploading; filling the hole completes it.
	mustAppend(t, m, s, 2, chunks[2])
	st := mustComplete(t, m, s, len(chunks))
	if st.State != StateComplete {
		t.Fatalf("state %s after filling the hole", st.State)
	}
}

func TestUploadStatusRanges(t *testing.T) {
	m, _ := newTestManager(t, nil)
	s, _ := m.Open(2048)
	full := make([]byte, 2048)
	for _, i := range []int{0, 1, 3, 4, 7} {
		mustAppend(t, m, s, i, full)
	}
	st := m.Status(s)
	want := [][2]int{{0, 2}, {3, 5}, {7, 8}}
	if len(st.ReceivedRanges) != len(want) {
		t.Fatalf("ranges %v, want %v", st.ReceivedRanges, want)
	}
	for i := range want {
		if st.ReceivedRanges[i] != want[i] {
			t.Fatalf("ranges %v, want %v", st.ReceivedRanges, want)
		}
	}
	if st.NextMissing != 2 {
		t.Fatalf("next_missing %d, want 2", st.NextMissing)
	}
}

func TestUploadSessionLimit(t *testing.T) {
	m, _ := newTestManager(t, func(c *Config) { c.MaxSessions = 2 })
	if _, err := m.Open(0); err != nil {
		t.Fatal(err)
	}
	s2, err := m.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(0); err == nil {
		t.Fatal("third session admitted past MaxSessions=2")
	}
	if !m.Abort(s2.id) {
		t.Fatal("abort failed")
	}
	if _, err := m.Open(0); err != nil {
		t.Fatalf("open after abort: %v", err)
	}
}

func TestUploadByteBudget(t *testing.T) {
	m, _ := newTestManager(t, func(c *Config) { c.MaxBytes = 4096 })
	s, _ := m.Open(2048)
	full := make([]byte, 2048)
	mustAppend(t, m, s, 0, full)
	mustAppend(t, m, s, 1, full)
	_, err := m.Append(s, 2, full, "")
	if err == nil {
		t.Fatal("session exceeded MaxBytes")
	}
	if ce := err.(*ChunkError); ce.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget status %d, want 413", ce.Code)
	}
}

// TestStoreEvictionUnderConcurrentJobs puts graphs from many goroutines
// through a tiny store while readers hold and traverse evicted graphs —
// the -race assertion that eviction never invalidates a held reference.
func TestStoreEvictionUnderConcurrentJobs(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(1, reg) // clamps to 1 MiB; a few graphs thrash it
	graphs := make([]*graph.Graph, 6)
	fps := make([]string, len(graphs))
	for i := range graphs {
		var err error
		graphs[i], err = gen.ErdosRenyi(2000, 12000, true, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = graph.Fingerprint(graphs[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := (w + i) % len(graphs)
				st.Put(fps[k], graphs[k])
				if g, ok := st.Get(fps[(w+i+1)%len(graphs)]); ok {
					// Simulate a job holding the reference across evictions.
					var sum int64
					for _, x := range g.Xadj {
						sum += x
					}
					_ = sum
				}
			}
		}(w)
	}
	wg.Wait()
	if st.Bytes() > 1<<20 && st.Len() > 1 {
		t.Fatalf("store over budget: %d bytes in %d entries", st.Bytes(), st.Len())
	}
	if v := reg.Snapshot().Counters["ingest.store_evictions"]; v == 0 {
		t.Fatal("no evictions under a 1 MiB budget")
	}
}

func TestStoreLoadPathSingleFlight(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(64<<20, reg)
	g := ingestTestGraph(t)
	dir := t.TempDir()
	path := dir + "/g.dmgb"
	if err := graph.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, fp, err := st.LoadPath(path)
			if err != nil {
				errs <- err
				return
			}
			if fp != graph.Fingerprint(g) || graph.Fingerprint(got) != fp {
				errs <- fmt.Errorf("LoadPath returned the wrong graph")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["ingest.store_misses"] != 1 {
		t.Fatalf("store_misses = %d, want 1 (single flight)", snap.Counters["ingest.store_misses"])
	}
	// A second round is all hits via the path index.
	if _, _, err := st.LoadPath(path); err != nil {
		t.Fatal(err)
	}
	if hits := reg.Snapshot().Counters["ingest.store_hits"]; hits == 0 {
		t.Fatal("repeat LoadPath did not hit the store")
	}
}
