package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// spillStore builds a store with the persistent tier on dir.
func spillStore(t *testing.T, dir string) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	st := NewStore(64<<20, reg)
	if err := st.EnableSpill(SpillConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	return st, reg
}

func spillGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.ErdosRenyi(300, 1500, true, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func spillPath(dir, fp string) string { return filepath.Join(dir, fp+spillExt) }

func TestSpillPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	g := spillGraph(t, 3)
	fp := graph.Fingerprint(g)

	st1, _ := spillStore(t, dir)
	st1.Put(fp, g)
	if _, err := os.Stat(spillPath(dir, fp)); err != nil {
		t.Fatalf("deposit left no spill file: %v", err)
	}

	// A second store on the same directory models the restarted daemon:
	// empty memory, same disk.
	st2, reg := spillStore(t, dir)
	if st2.Len() != 0 {
		t.Fatalf("restart scan decoded %d graphs eagerly; the index must be headers-only", st2.Len())
	}
	if !st2.Contains(fp) {
		t.Fatal("spilled fingerprint unknown after restart")
	}
	got, rehydrated, ok := st2.Resolve(fp)
	if !ok || !rehydrated {
		t.Fatalf("Resolve after restart: ok=%v rehydrated=%v", ok, rehydrated)
	}
	if graph.Fingerprint(got) != fp {
		t.Fatal("rehydrated graph does not re-fingerprint to its ref")
	}
	// Now resident: the second resolve is a memory hit, not a disk read.
	if _, rehydrated, ok = st2.Resolve(fp); !ok || rehydrated {
		t.Fatalf("second Resolve: ok=%v rehydrated=%v, want memory hit", ok, rehydrated)
	}
	snap := reg.Snapshot()
	if v := snap.Counters["ingest.spill_rehydrations"]; v != 1 {
		t.Fatalf("spill_rehydrations = %d, want 1", v)
	}
	if v := snap.Counters["ingest.spill_corrupt"]; v != 0 {
		t.Fatalf("spill_corrupt = %d, want 0", v)
	}
}

func TestSpillShortCircuitFromDiskOnly(t *testing.T) {
	dir := t.TempDir()
	g := ingestTestGraph(t)
	fp := graph.Fingerprint(g)
	st1, _ := spillStore(t, dir)
	st1.Put(fp, g)

	// Restarted daemon: the graph exists only on disk, yet a re-upload must
	// still settle after chunk 0 — the whole point of persisting the store.
	st2, _ := spillStore(t, dir)
	m, _ := newTestManager(t, func(cfg *Config) { cfg.Store = st2 })
	enc, err := graph.EncodeDMGB(g)
	if err != nil {
		t.Fatal(err)
	}
	chunks := chunksOf(enc, 2048)
	s, err := m.Open(2048)
	if err != nil {
		t.Fatal(err)
	}
	st := mustAppend(t, m, s, 0, chunks[0])
	if st.State != StateShortCircuit {
		t.Fatalf("state after chunk 0 = %s, want short_circuit (disk-backed fingerprint)", st.State)
	}
	if st.GraphRef != fp {
		t.Fatalf("short-circuit graph_ref %q, want %s", st.GraphRef, fp)
	}
}

// TestSpillCorruptionQuarantined injects every corruption the spill tier
// claims to survive: each one must be quarantined (counted, set aside,
// dropped from the index) without failing startup or poisoning later loads
// of the same fingerprint.
func TestSpillCorruptionQuarantined(t *testing.T) {
	encode := func(t *testing.T, g *graph.Graph) []byte {
		t.Helper()
		enc, err := graph.EncodeDMGB(g)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}

	// deposit writes one spilled graph and returns its fingerprint — the
	// fixture each corruption then defaces.
	deposit := func(t *testing.T, dir string) string {
		t.Helper()
		g := spillGraph(t, 5)
		fp := graph.Fingerprint(g)
		st, _ := spillStore(t, dir)
		st.Put(fp, g)
		return fp
	}

	// checkResolveFails restarts on the defaced directory and asserts the
	// load-time quarantine path: the ref reads as a miss, the counter ticks,
	// the file is set aside, and a re-deposit of the same graph recovers.
	checkLoadQuarantine := func(t *testing.T, dir, fp string) {
		t.Helper()
		st, reg := spillStore(t, dir)
		if !st.Contains(fp) {
			t.Fatal("header-valid corruption should pass the scan and be indexed")
		}
		if _, _, ok := st.Resolve(fp); ok {
			t.Fatal("Resolve served a corrupt spill file")
		}
		if v := reg.Snapshot().Counters["ingest.spill_corrupt"]; v != 1 {
			t.Fatalf("spill_corrupt = %d, want 1", v)
		}
		if _, err := os.Stat(spillPath(dir, fp)); !os.IsNotExist(err) {
			t.Fatalf("corrupt spill file still under its valid name: %v", err)
		}
		if _, err := os.Stat(spillPath(dir, fp) + quarantineExt); err != nil {
			t.Fatalf("corrupt spill file not quarantined: %v", err)
		}
		if st.Contains(fp) {
			t.Fatal("corrupt fingerprint still indexed after quarantine")
		}
		// The miss is not sticky: re-depositing the graph works and the next
		// resolve rehydrates cleanly from the fresh file.
		g := spillGraph(t, 5)
		st.Put(fp, g)
		if _, ok := st.Get(fp); !ok {
			t.Fatal("re-deposit after quarantine did not restore the graph")
		}
	}

	t.Run("truncated", func(t *testing.T) {
		dir := t.TempDir()
		fp := deposit(t, dir)
		info, err := os.Stat(spillPath(dir, fp))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(spillPath(dir, fp), info.Size()/2); err != nil {
			t.Fatal(err)
		}
		checkLoadQuarantine(t, dir, fp)
	})

	t.Run("bitflip-body", func(t *testing.T) {
		dir := t.TempDir()
		fp := deposit(t, dir)
		b, err := os.ReadFile(spillPath(dir, fp))
		if err != nil {
			t.Fatal(err)
		}
		b[graph.DMGBHeaderSize+len(b)/2] ^= 0x20 // body byte; header stays valid
		if err := os.WriteFile(spillPath(dir, fp), b, 0o644); err != nil {
			t.Fatal(err)
		}
		checkLoadQuarantine(t, dir, fp)
	})

	t.Run("header-name-mismatch", func(t *testing.T) {
		// A valid DMGB stream filed under a different fingerprint's name: the
		// scan's header check catches it before it is ever indexed.
		dir := t.TempDir()
		g := spillGraph(t, 5)
		wrong := strings.Repeat("ab", 32)
		if err := os.WriteFile(spillPath(dir, wrong), encode(t, g), 0o644); err != nil {
			t.Fatal(err)
		}
		st, reg := spillStore(t, dir)
		if st.Contains(wrong) || st.Contains(graph.Fingerprint(g)) {
			t.Fatal("mis-filed spill file should not be indexed under either name")
		}
		if v := reg.Snapshot().Counters["ingest.spill_corrupt"]; v != 1 {
			t.Fatalf("spill_corrupt = %d, want 1", v)
		}
		if _, err := os.Stat(spillPath(dir, wrong) + quarantineExt); err != nil {
			t.Fatalf("mis-filed spill file not quarantined: %v", err)
		}
	})

	t.Run("stray-file", func(t *testing.T) {
		dir := t.TempDir()
		fp := deposit(t, dir)
		if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not a graph"), 0o644); err != nil {
			t.Fatal(err)
		}
		st, reg := spillStore(t, dir)
		if v := reg.Snapshot().Counters["ingest.spill_corrupt"]; v != 1 {
			t.Fatalf("spill_corrupt = %d, want 1", v)
		}
		if _, err := os.Stat(filepath.Join(dir, "notes.txt"+quarantineExt)); err != nil {
			t.Fatalf("stray file not quarantined: %v", err)
		}
		// The legitimate neighbor is untouched by the stray's quarantine.
		if _, rehydrated, ok := st.Resolve(fp); !ok || !rehydrated {
			t.Fatalf("valid spill file harmed by stray quarantine: ok=%v rehydrated=%v", ok, rehydrated)
		}
	})
}

func TestSpillScanSweepsTempsSkipsQuarantined(t *testing.T) {
	dir := t.TempDir()
	fp := func() string {
		g := spillGraph(t, 9)
		fp := graph.Fingerprint(g)
		st, _ := spillStore(t, dir)
		st.Put(fp, g)
		return fp
	}()
	tmp := filepath.Join(dir, ".spill-1234.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(dir, strings.Repeat("cd", 32)+spillExt+quarantineExt)
	if err := os.WriteFile(old, []byte("previously quarantined"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, reg := spillStore(t, dir)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("crash-leftover temp file survived the startup sweep")
	}
	if _, err := os.Stat(old); err != nil {
		t.Fatalf("quarantined file must be left for the operator: %v", err)
	}
	if v := reg.Snapshot().Counters["ingest.spill_corrupt"]; v != 0 {
		t.Fatalf("quarantined leftovers recounted: spill_corrupt = %d, want 0", v)
	}
	if !st.Contains(fp) {
		t.Fatal("valid spill file lost among the leftovers")
	}
}

func TestSpillDiskBudgetEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	st, reg := spillStore(t, dir)
	g1, g2, g3 := spillGraph(t, 21), spillGraph(t, 22), spillGraph(t, 23)
	enc, err := graph.EncodeDMGB(g1)
	if err != nil {
		t.Fatal(err)
	}
	// Room for two spill files, not three (the clamp in EnableSpill is for
	// production dirs; the test sizes the budget to its graphs directly).
	st.spill.maxBytes = int64(len(enc)) * 5 / 2

	fps := make([]string, 0, 3)
	for _, g := range []*graph.Graph{g1, g2, g3} {
		fp := graph.Fingerprint(g)
		fps = append(fps, fp)
		st.Put(fp, g)
	}
	if st.spill.contains(fps[0]) {
		t.Fatal("oldest spill file still indexed past the disk budget")
	}
	if _, err := os.Stat(spillPath(dir, fps[0])); !os.IsNotExist(err) {
		t.Fatalf("evicted spill file still on disk: %v", err)
	}
	for _, fp := range fps[1:] {
		if !st.spill.contains(fp) {
			t.Fatalf("recent fingerprint %s evicted, want only the oldest", fp[:12])
		}
	}
	if v := reg.Snapshot().Counters["ingest.spill_evictions"]; v != 1 {
		t.Fatalf("spill_evictions = %d, want 1", v)
	}
	// Disk eviction behaves exactly like memory eviction did: the restarted
	// daemon answers a plain miss for the evicted ref.
	st2, _ := spillStore(t, dir)
	if st2.Contains(fps[0]) {
		t.Fatal("evicted ref resurfaced after restart")
	}
	if !st2.Contains(fps[2]) {
		t.Fatal("retained ref lost after restart")
	}
}
