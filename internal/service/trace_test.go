package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
)

// syncBuffer is a bytes.Buffer safe for the access logger's writes racing
// the test's reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestJobTracingEndToEnd is the tentpole acceptance check: a job submitted
// under a caller traceparent answers with that trace id, retains a span tree
// (TraceSlowMillis 0 = every job), and the tree links service spans and the
// distributed run's per-rank spans into one parent chain.
func TestJobTracingEndToEnd(t *testing.T) {
	_, gtext := testGraph(t)
	var access syncBuffer
	_, cl := startServer(t, service.Config{
		QueueLen: 8, Workers: 1,
		TraceSlowMillis: 0, // retain every finished job
		AccessLog:       &access,
	}, true)

	const traceID = "0af7651916cd43dd8448eb211c80319c"
	const parentSpan = "b7ad6b7169203331"
	cl.Traceparent = obs.Traceparent(traceID, parentSpan)

	resp, err := cl.Submit(context.Background(), &service.Request{
		Algorithm: service.AlgoMatch, Graph: gtext, Ranks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != traceID {
		t.Fatalf("resp.TraceID = %q, want the caller's %q", resp.TraceID, traceID)
	}

	jt, err := cl.JobTrace(context.Background(), resp.JobID)
	if err != nil {
		t.Fatalf("trace endpoint: %v", err)
	}
	if jt.JobID != resp.JobID || jt.TraceID != traceID {
		t.Fatalf("trace identity = (%q, %q), want (%q, %q)", jt.JobID, jt.TraceID, resp.JobID, traceID)
	}
	if jt.Status != http.StatusOK {
		t.Fatalf("trace status = %d, want 200", jt.Status)
	}
	if jt.TotalMillis <= 0 || jt.RunMillis <= 0 {
		t.Fatalf("timings missing: total %.3fms run %.3fms", jt.TotalMillis, jt.RunMillis)
	}

	// The tree must hold the request-scoped service spans AND per-rank
	// runtime spans, every span well-formed, and every parent either the
	// inbound caller span or a span inside the tree.
	ids := map[string]service.TraceSpan{}
	names := map[string]bool{}
	runtimeSpans := 0
	for _, s := range jt.Spans {
		if len(s.SpanID) != obs.SpanIDLen {
			t.Fatalf("span %q has malformed id %q", s.Name, s.SpanID)
		}
		ids[s.SpanID] = s
		names[s.Name] = true
		if s.Rank >= 0 {
			runtimeSpans++
		}
	}
	for _, want := range []string{"serve.job", "serve.admit", "serve.queue_wait", "serve.pool_acquire", "serve.run", "serve.respond"} {
		if !names[want] {
			t.Fatalf("span %q missing from tree (have %v)", want, names)
		}
	}
	if runtimeSpans == 0 {
		t.Fatal("no runtime (rank >= 0) spans linked into the job trace")
	}
	var root *service.TraceSpan
	for _, s := range jt.Spans {
		switch {
		case s.Name == "serve.job":
			r := s
			root = &r
			if s.ParentSpanID != parentSpan {
				t.Fatalf("serve.job parent = %q, want the caller's span %q", s.ParentSpanID, parentSpan)
			}
		case s.ParentSpanID == "":
			t.Fatalf("span %q has no parent (only serve.job may be the root)", s.Name)
		default:
			if _, ok := ids[s.ParentSpanID]; !ok {
				t.Fatalf("span %q parent %q not in the tree", s.Name, s.ParentSpanID)
			}
		}
	}
	if root == nil {
		t.Fatal("no serve.job root span")
	}

	// The access log saw the job: one JSON line carrying the same identity.
	var entry struct {
		TraceID  string `json:"trace_id"`
		JobID    string `json:"job_id"`
		Status   int    `json:"status"`
		Retained bool   `json:"trace_retained"`
	}
	line := strings.TrimSpace(access.String())
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log line %q: %v", line, err)
	}
	if entry.TraceID != traceID || entry.JobID != resp.JobID || entry.Status != 200 || !entry.Retained {
		t.Fatalf("access entry = %+v, want trace %s job %s status 200 retained", entry, traceID, resp.JobID)
	}
}

// TestTraceHeaderEchoedOnEveryAnswer pins the X-DMGM-Trace contract: minted
// when the caller sends nothing, the caller's own id when valid, echoed on
// rejects too.
func TestTraceHeaderEchoedOnEveryAnswer(t *testing.T) {
	_, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{QueueLen: 8, Workers: 1}, true)

	post := func(traceparent string) *http.Response {
		t.Helper()
		body := `{"algorithm":"match","ranks":2,"graph":` + string(mustJSON(t, gtext)) + `}`
		req, err := http.NewRequest(http.MethodPost, cl.Base+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if traceparent != "" {
			req.Header.Set(service.TraceparentHeader, traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// No traceparent: a fresh id is minted.
	minted := post("").Header.Get(service.TraceHeader)
	if len(minted) != obs.TraceIDLen {
		t.Fatalf("minted trace id %q, want %d hex chars", minted, obs.TraceIDLen)
	}
	// Valid traceparent: the caller's id is honored.
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	if got := post(obs.Traceparent(tid, "00f067aa0ba902b7")).Header.Get(service.TraceHeader); got != tid {
		t.Fatalf("echoed trace id %q, want %q", got, tid)
	}
	// Malformed traceparent: minted, not echoed back broken.
	if got := post("garbage").Header.Get(service.TraceHeader); len(got) != obs.TraceIDLen || got == "garbage" {
		t.Fatalf("trace id for malformed traceparent = %q", got)
	}
	// A reject (unknown algorithm) still carries the header and surfaces it
	// through APIError.TraceID.
	_, err := cl.Submit(context.Background(), &service.Request{Algorithm: "bogus", Graph: gtext})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("bad submit: %v, want *client.APIError", err)
	}
	if len(apiErr.TraceID) != obs.TraceIDLen {
		t.Fatalf("APIError.TraceID = %q, want a trace id", apiErr.TraceID)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTraceRetentionPolicy: fast successes below the slow threshold are not
// retained; raising the bar to "never slow" plus a clean run means 404.
func TestTraceRetentionPolicy(t *testing.T) {
	_, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{
		QueueLen: 8, Workers: 1,
		TraceSlowMillis: 1 << 40, // nothing is that slow
	}, true)
	resp, err := cl.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.JobTrace(context.Background(), resp.JobID)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("fast job trace fetch: %v, want 404", err)
	}

	// Disabled retention (< 0) keeps nothing, not even every-job mode jobs.
	_, cl2 := startServer(t, service.Config{
		QueueLen: 8, Workers: 1,
		TraceSlowMillis: -1,
	}, true)
	resp2, err := cl2.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.JobTrace(context.Background(), resp2.JobID); err == nil {
		t.Fatal("trace retained with retention disabled")
	}
}

// TestTracingConformance: tracing is pure observation — the same job on a
// traced server and an untraced one (DisableTracing) must answer with
// byte-identical results, fingerprints, and quality numbers. Coloring uses
// superstep >= n so the answer is timing-independent (the same guard the
// -compare-inline check in dmgm-load uses).
func TestTracingConformance(t *testing.T) {
	g, gtext := testGraph(t)
	_, traced := startServer(t, service.Config{QueueLen: 8, Workers: 1, TraceSlowMillis: 0}, true)
	_, untraced := startServer(t, service.Config{QueueLen: 8, Workers: 1, DisableTracing: true}, true)

	for _, algo := range []string{service.AlgoMatch, service.AlgoColor} {
		req := service.Request{
			Algorithm: algo, Graph: gtext, Ranks: 3, Seed: 9,
			Superstep: g.NumVertices(), NoCache: true,
		}
		r1, r2 := req, req
		a, err := traced.Submit(context.Background(), &r1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := untraced.Submit(context.Background(), &r2)
		if err != nil {
			t.Fatal(err)
		}
		if a.Result != b.Result {
			t.Fatalf("%s: traced result differs from untraced", algo)
		}
		if a.Fingerprint != b.Fingerprint || a.Weight != b.Weight || a.Colors != b.Colors {
			t.Fatalf("%s: traced summary differs: %+v vs %+v", algo, a, b)
		}
		if a.TraceID == "" {
			t.Fatalf("%s: traced server answered without a trace id", algo)
		}
	}
}

// TestHealthzStructured pins the /healthz JSON shape added in PROTOCOL §6:
// state, queue depths, inflight, idle worlds — while keeping the 200/503
// status contract the balancers rely on.
func TestHealthzStructured(t *testing.T) {
	srv, cl := startServer(t, service.Config{QueueLen: 8, Workers: 2}, true)
	resp, err := http.Get(cl.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	var hb struct {
		Status         string         `json:"status"`
		Workers        int            `json:"workers"`
		Inflight       int64          `json:"inflight"`
		QueueDepth     int            `json:"queue_depth"`
		Queues         map[string]int `json:"queues"`
		IdleWorlds     int            `json:"idle_worlds"`
		TracesRetained int            `json:"traces_retained"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if hb.Status != "ok" || hb.Workers != 2 || hb.QueueDepth != 0 {
		t.Fatalf("healthz = %+v, want status ok, 2 workers, empty queue", hb)
	}

	// Draining flips status to 503 + "draining" but keeps the JSON shape.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(cl.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp2.StatusCode)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&hb); err != nil {
		t.Fatalf("draining healthz body: %v", err)
	}
	if hb.Status != "draining" {
		t.Fatalf("draining status = %q", hb.Status)
	}
}

// TestQueueWaitAndRunHistograms: the satellite metrics — global and
// per-tenant queue-wait/run-time histograms fill as jobs flow.
func TestQueueWaitAndRunHistograms(t *testing.T) {
	_, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{QueueLen: 8, Workers: 1}, true)
	cl.Tenant = "acme"
	for seed := uint64(1); seed <= 2; seed++ {
		if _, err := cl.Submit(context.Background(), &service.Request{
			Algorithm: service.AlgoMatch, Graph: gtext, Ranks: 2, Seed: seed,
		}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"service.queue_wait_ms", "service.run_ms",
		"service.tenant.acme.queue_wait_ms", "service.tenant.acme.run_ms",
	} {
		h, ok := m.Histograms[name]
		if !ok {
			t.Fatalf("histogram %s missing", name)
		}
		if h.Count != 2 {
			t.Fatalf("%s count = %d, want 2", name, h.Count)
		}
	}
}
