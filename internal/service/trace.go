package service

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// Request-scoped tracing: every job carries a W3C trace id (accepted from the
// caller's `traceparent` header or minted) and records a span tree over its
// service lifecycle — admit → resolve → queue wait → pool acquire →
// partition → run → cache deposit → respond — plus the runtime's per-rank
// phase spans, all under one trace id. The tree is exported over OTLP on job
// completion, retained in a bounded ring for slow/error jobs (served by
// GET /v1/jobs/{id}/trace), and summarized as one access-log line.
//
// Concurrency: a jobTrace's tracer is the single-goroutine obs.Tracer, but a
// job is touched by two goroutines — the submit handler and a worker. The
// accesses are strictly sequenced, never concurrent: the handler records
// until sched.enqueue (whose mutex publishes the state to the worker), the
// worker records between dequeue and close(j.done) (which publishes back),
// and the handler resumes only after <-j.done. The timeout path never lets
// the abandoned run goroutine touch the jobTrace: the run goroutine writes
// only its own per-job runtime observer and the partition measurements it
// hands over through the result channel, which the worker reads only on the
// non-abandoned path.

// TraceparentHeader is the inbound W3C trace-context header: a valid value
// continues the caller's trace, anything else mints a fresh one.
const TraceparentHeader = "Traceparent"

// TraceHeader is the response header echoing the request's trace id on every
// answer (success, reject, or error) — the handle for the access log,
// GET /v1/jobs/{id}/trace, and an OTLP backend query.
const TraceHeader = "X-DMGM-Trace"

// Span names of the service lifecycle (static strings, per the tracer
// contract). The runtime's phase names (match.outer, color.round, ...) appear
// alongside these in a complete trace.
const (
	spanJob         = "serve.job"
	spanAdmit       = "serve.admit"
	spanResolve     = "serve.resolve"
	spanRehydrate   = "serve.partition.rehydrate" // graph_ref served from the disk spill tier
	spanCacheHit    = "serve.cache.hit"
	spanQueueWait   = "serve.queue_wait"
	spanPoolAcquire = "serve.pool_acquire"
	spanPartCached  = "serve.partition.cached"
	spanPartCompute = "serve.partition.compute"
	spanRun         = "serve.run"
	spanRunAbandon  = "serve.run.abandoned"
	spanDeposit     = "serve.cache_deposit"
	spanRespond     = "serve.respond"
)

// Cache dispositions reported in traces and access-log lines.
const (
	cacheHit    = "hit"
	cacheMiss   = "miss"
	cacheBypass = "bypass" // no_cache request
	cacheNone   = ""       // rejected before the cache was consulted
)

// jobTraceSpanCap bounds one job's service-lifecycle spans. The lifecycle is
// a dozen spans; the headroom is for future phases.
const jobTraceSpanCap = 64

// jobTrace is the per-request tracing state. A nil jobTrace is the disabled
// state: every method is a nil-check no-op, so the request path reads the
// same with tracing off.
type jobTrace struct {
	traceID    string // 32-hex W3C trace id (accepted or minted)
	parentSpan string // 16-hex span id of the caller's enclosing span, or ""

	tr   *obs.Tracer // service lifecycle spans, rank = obs.DriverRank
	root uint64      // token of the open serve.job span

	// runSeq is the serve.run span's token; the runtime's per-rank spans are
	// exported parented under it.
	runSeq uint64
	// runtime holds the job's per-rank phase spans, collected by the worker
	// after a successful run.
	runtime []obs.Span

	// Summary fields for the access log and the retained trace.
	jobID     string
	tenant    string
	algo      string
	ranks     int
	start     time.Time
	queueWait time.Duration
	runDur    time.Duration
	cache     string
}

// newJobTrace mints the per-request trace identity. traceparent is the raw
// request header ("" = none). When tracing is disabled the tracer stays nil
// and only the identity fields are live (the access log still wants them).
func newJobTrace(traceparent string, enabled bool) *jobTrace {
	jt := &jobTrace{start: time.Now(), cache: cacheNone}
	if tid, sid, ok := obs.ParseTraceparent(traceparent); ok {
		jt.traceID, jt.parentSpan = tid, sid
	} else {
		jt.traceID = obs.NewTraceID()
	}
	if enabled {
		jt.tr = obs.NewTracer(obs.DriverRank, jobTraceSpanCap)
		jt.root = jt.tr.Begin(spanJob)
	}
	return jt
}

func (jt *jobTrace) begin(name string) uint64 {
	if jt == nil {
		return 0
	}
	return jt.tr.BeginUnder(name, jt.root)
}

func (jt *jobTrace) end(tok uint64, n int64) {
	if jt != nil {
		jt.tr.EndN(tok, n)
	}
}

func (jt *jobTrace) setQueueWait(d time.Duration) {
	if jt != nil {
		jt.queueWait = d
	}
}

func (jt *jobTrace) setRunDur(d time.Duration) {
	if jt != nil {
		jt.runDur = d
	}
}

// observe records a retroactive child of the root span.
func (jt *jobTrace) observe(name string, start time.Time, n int64) uint64 {
	if jt == nil {
		return 0
	}
	return jt.tr.ObserveUnder(name, start, n, jt.root)
}

// observeSpan records a retroactive child with an explicit duration —
// measurements handed over from the run goroutine.
func (jt *jobTrace) observeSpan(name string, start time.Time, dur time.Duration, n int64) uint64 {
	if jt == nil {
		return 0
	}
	return jt.tr.ObserveSpan(name, start.UnixNano(), dur.Nanoseconds(), n, jt.root)
}

// identity builds the job's OTLP identity: the job id seeds deterministic
// span ids, the W3C trace id pins the trace, and parentHex (the caller's
// span for service spans, the serve.run span for runtime spans) parents the
// batch's roots.
func (jt *jobTrace) identity(service string, parentHex string) obs.OTLPIdentity {
	return obs.OTLPIdentity{
		RunID:         jt.jobID,
		Service:       service,
		WorldSize:     jt.ranks,
		TraceIDHex:    jt.traceID,
		ParentSpanHex: parentHex,
	}
}

// TraceSpan is one span of a retained job trace, the JSON shape served by
// GET /v1/jobs/{id}/trace (docs/PROTOCOL.md §9). Ids match the OTLP export
// of the same job, so a retained trace cross-references a collector's view.
type TraceSpan struct {
	SpanID        string `json:"span_id"`
	ParentSpanID  string `json:"parent_span_id,omitempty"`
	Name          string `json:"name"`
	Rank          int    `json:"rank"` // -1 = service/driver
	StartUnixNano int64  `json:"start_unix_nano"`
	DurNanos      int64  `json:"dur_nanos"`
	N             int64  `json:"n,omitempty"`
	Msgs          int64  `json:"msgs,omitempty"`
	Bytes         int64  `json:"bytes,omitempty"`
	Detail        bool   `json:"detail,omitempty"`
}

// JobTrace is a retained job's span tree plus its request summary — the body
// of GET /v1/jobs/{id}/trace.
type JobTrace struct {
	JobID           string      `json:"job_id"`
	TraceID         string      `json:"trace_id"`
	Tenant          string      `json:"tenant"`
	Algorithm       string      `json:"algorithm,omitempty"`
	Ranks           int         `json:"ranks,omitempty"`
	Status          int         `json:"status"`
	Error           string      `json:"error,omitempty"`
	Cache           string      `json:"cache,omitempty"`
	QueueWaitMillis float64     `json:"queue_wait_ms"`
	RunMillis       float64     `json:"run_ms"`
	TotalMillis     float64     `json:"total_ms"`
	Spans           []TraceSpan `json:"spans"`
}

// snapshot freezes the jobTrace into its retained/served form. Call only
// after the root span is closed (request finished).
func (jt *jobTrace) snapshot(status int, errMsg string, total time.Duration) *JobTrace {
	out := &JobTrace{
		JobID:           jt.jobID,
		TraceID:         jt.traceID,
		Tenant:          jt.tenant,
		Algorithm:       jt.algo,
		Ranks:           jt.ranks,
		Status:          status,
		Error:           errMsg,
		Cache:           jt.cache,
		QueueWaitMillis: durMillis(jt.queueWait),
		RunMillis:       durMillis(jt.runDur),
		TotalMillis:     durMillis(total),
	}
	svcID := jt.identity("dmgm-serve", jt.parentSpan)
	for _, s := range jt.tr.Spans() {
		out.Spans = append(out.Spans, traceSpanOf(s, svcID))
	}
	if len(jt.runtime) > 0 {
		runID := jt.identity("dmgm-serve", svcID.SpanID(obs.DriverRank, jt.runSeq))
		for _, s := range jt.runtime {
			out.Spans = append(out.Spans, traceSpanOf(s, runID))
		}
	}
	return out
}

func traceSpanOf(s obs.Span, id obs.OTLPIdentity) TraceSpan {
	parent := id.ParentSpanHex
	if s.Parent != 0 {
		parent = id.SpanID(s.Rank, s.Parent)
	}
	return TraceSpan{
		SpanID:        id.SpanID(s.Rank, s.Seq),
		ParentSpanID:  parent,
		Name:          s.Name,
		Rank:          s.Rank,
		StartUnixNano: s.Start,
		DurNanos:      s.Dur,
		N:             s.N,
		Msgs:          s.Msgs,
		Bytes:         s.Bytes,
		Detail:        s.Detail,
	}
}

func durMillis(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// traceRing retains the most recent slow/error job traces, bounded and
// indexed by job id. Safe for concurrent use.
type traceRing struct {
	mu   sync.Mutex
	cap  int
	fifo []string // job ids, oldest first
	byID map[string]*JobTrace
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		return nil // retention disabled
	}
	return &traceRing{cap: capacity, byID: make(map[string]*JobTrace, capacity)}
}

// add retains one trace, evicting the oldest beyond capacity. Nil-safe.
func (r *traceRing) add(t *JobTrace) {
	if r == nil || t == nil || t.JobID == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[t.JobID]; !dup {
		if len(r.fifo) == r.cap {
			delete(r.byID, r.fifo[0])
			copy(r.fifo, r.fifo[1:])
			r.fifo = r.fifo[:len(r.fifo)-1]
		}
		r.fifo = append(r.fifo, t.JobID)
	}
	r.byID[t.JobID] = t
}

// get looks a retained trace up by job id. Nil-safe.
func (r *traceRing) get(jobID string) (*JobTrace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[jobID]
	return t, ok
}

// len reports the retained-trace count. Nil-safe.
func (r *traceRing) len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.fifo)
}

// accessEntry is one structured access-log line (JSON, one object per line):
// the request's identity, outcome, and time breakdown — enough to find the
// slow tail and jump to its trace without a collector.
type accessEntry struct {
	TimeUnixNano    int64   `json:"ts_unix_nano"`
	TraceID         string  `json:"trace_id"`
	JobID           string  `json:"job_id,omitempty"`
	Tenant          string  `json:"tenant,omitempty"`
	Algorithm       string  `json:"algorithm,omitempty"`
	Ranks           int     `json:"ranks,omitempty"`
	Status          int     `json:"status"`
	Error           string  `json:"error,omitempty"`
	Cache           string  `json:"cache,omitempty"`
	QueueWaitMillis float64 `json:"queue_wait_ms"`
	RunMillis       float64 `json:"run_ms"`
	TotalMillis     float64 `json:"total_ms"`
	TraceRetained   bool    `json:"trace_retained,omitempty"`
}

// accessLogger serializes access-log lines onto one writer. A nil logger
// discards.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{w: w}
}

func (l *accessLogger) log(e *accessEntry) {
	if l == nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	l.w.Write(line) //nolint:errcheck // best-effort log sink
	l.mu.Unlock()
}
