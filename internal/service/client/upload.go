package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/service/ingest"
)

// UploadStats is what an upload spent — what cmd/dmgm-load reports as
// upload throughput.
type UploadStats struct {
	// ChunksSent counts chunk PUTs that reached the server (retries
	// included).
	ChunksSent int
	// ChunksRetried counts chunk PUTs repeated after a failure.
	ChunksRetried int
	// BytesSent counts body bytes across all PUTs (retries included).
	BytesSent int64
	// ShortCircuit reports that the server already held the graph: the
	// transfer stopped after the first chunk.
	ShortCircuit bool
	// Elapsed is the wall time of the whole upload.
	Elapsed time.Duration
}

// UploadOptions shape an Upload call. The zero value works.
type UploadOptions struct {
	// ChunkBytes is the chunk size to request (0: the server default).
	ChunkBytes int64
	// MaxChunkRetries bounds per-chunk retry attempts (default 3).
	MaxChunkRetries int
	// FaultEvery injects a simulated transport fault before sending every
	// FaultEvery-th chunk (testing and the load generator's fault mode;
	// 0 disables). The faulted chunk is retried like a real failure.
	FaultEvery int
}

// Upload ships an encoded graph to the daemon through the chunked upload
// API (docs/PROTOCOL.md §7) and returns the graph_ref to submit jobs
// against. The transfer is resumable and content-addressed: chunks are
// retried individually on failure, and a graph the daemon already holds
// short-circuits after the first chunk.
func (c *Client) Upload(ctx context.Context, enc []byte, opts UploadOptions) (string, *UploadStats, error) {
	if opts.MaxChunkRetries <= 0 {
		opts.MaxChunkRetries = 3
	}
	start := time.Now()
	stats := &UploadStats{}
	st, err := c.UploadOpen(ctx, opts.ChunkBytes)
	if err != nil {
		return "", stats, err
	}
	ref, err := c.uploadChunks(ctx, st, enc, opts, stats)
	stats.Elapsed = time.Since(start)
	return ref, stats, err
}

// UploadGraph encodes g as DMGB and uploads it. DMGB is the right wire
// format: its header carries the fingerprint, so repeat uploads
// short-circuit.
func (c *Client) UploadGraph(ctx context.Context, g *graph.Graph, opts UploadOptions) (string, *UploadStats, error) {
	enc, err := graph.EncodeDMGB(g)
	if err != nil {
		return "", &UploadStats{}, err
	}
	return c.Upload(ctx, enc, opts)
}

// UploadOpen opens an upload session.
func (c *Client) UploadOpen(ctx context.Context, chunkBytes int64) (*ingest.Status, error) {
	body, err := json.Marshal(struct {
		ChunkBytes int64 `json:"chunk_bytes,omitempty"`
	}{chunkBytes})
	if err != nil {
		return nil, err
	}
	return c.uploadCall(ctx, http.MethodPost, "/v1/uploads", body, "application/json")
}

// UploadStatus fetches a session's status — the resume point.
func (c *Client) UploadStatus(ctx context.Context, id string) (*ingest.Status, error) {
	return c.uploadCall(ctx, http.MethodGet, "/v1/uploads/"+id, nil, "")
}

// UploadChunk sends one chunk, with its checksum, retrying transient
// failures up to maxRetries times. Retries of a received chunk are
// idempotent on the server.
func (c *Client) UploadChunk(ctx context.Context, id string, idx int, data []byte, maxRetries int) (*ingest.Status, int, error) {
	sum := sha256.Sum256(data)
	path := fmt.Sprintf("/v1/uploads/%s/chunks/%d", id, idx)
	var lastErr error
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPut, c.Base+path, bytes.NewReader(data))
		if err != nil {
			return nil, attempt, err
		}
		hreq.Header.Set("Content-Type", "application/octet-stream")
		hreq.Header.Set("X-Chunk-SHA256", hex.EncodeToString(sum[:]))
		if c.Tenant != "" {
			hreq.Header.Set(service.TenantHeader, c.Tenant)
		}
		hresp, err := c.httpClient().Do(hreq)
		if err == nil {
			if hresp.StatusCode == http.StatusOK {
				st, derr := decodeUploadStatus(hresp)
				return st, attempt, derr
			}
			lastErr = decodeError(hresp)
			// Client errors (4xx) are not transient; give up at once.
			if hresp.StatusCode < http.StatusInternalServerError {
				return nil, attempt, lastErr
			}
		} else {
			lastErr = err
		}
		if attempt >= maxRetries {
			return nil, attempt, fmt.Errorf("chunk %d failed after %d retries: %w", idx, attempt, lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, attempt, ctx.Err()
		case <-time.After(50 * time.Millisecond << uint(attempt)):
		}
	}
}

// UploadComplete finalizes a session.
func (c *Client) UploadComplete(ctx context.Context, id string, chunks int) (*ingest.Status, error) {
	body, err := json.Marshal(struct {
		Chunks int `json:"chunks"`
	}{chunks})
	if err != nil {
		return nil, err
	}
	return c.uploadCall(ctx, http.MethodPost, "/v1/uploads/"+id+"/complete", body, "application/json")
}

// UploadAbort discards a session.
func (c *Client) UploadAbort(ctx context.Context, id string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/v1/uploads/"+id, nil)
	if err != nil {
		return err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusNoContent {
		return decodeError(hresp)
	}
	return nil
}

// UploadResume continues an interrupted upload: it reads the session's
// received ranges and sends only the missing chunks. Stats accumulate into
// stats.
func (c *Client) UploadResume(ctx context.Context, id string, enc []byte, opts UploadOptions, stats *UploadStats) (string, error) {
	if opts.MaxChunkRetries <= 0 {
		opts.MaxChunkRetries = 3
	}
	st, err := c.UploadStatus(ctx, id)
	if err != nil {
		return "", err
	}
	return c.uploadChunks(ctx, st, enc, opts, stats)
}

// uploadChunks drives a session from its current status to completion.
func (c *Client) uploadChunks(ctx context.Context, st *ingest.Status, enc []byte, opts UploadOptions, stats *UploadStats) (string, error) {
	if ref := settledRef(st, stats); ref != "" {
		return ref, nil
	}
	id, size := st.UploadID, st.ChunkBytes
	total := int((int64(len(enc)) + size - 1) / size)
	if total == 0 {
		total = 1 // an empty payload still fails decode server-side, cleanly
	}
	have := make(map[int]bool)
	for _, r := range st.ReceivedRanges {
		for i := r[0]; i < r[1]; i++ {
			have[i] = true
		}
	}
	for idx := 0; idx < total; idx++ {
		if have[idx] {
			continue
		}
		off := int64(idx) * size
		end := off + size
		if end > int64(len(enc)) {
			end = int64(len(enc))
		}
		data := enc[off:end]
		if opts.FaultEvery > 0 && (idx+1)%opts.FaultEvery == 0 {
			// Simulated transport fault: count a lost attempt, then send
			// the chunk for real — exercising the retry path end to end.
			stats.ChunksSent++
			stats.ChunksRetried++
			stats.BytesSent += int64(len(data))
		}
		cst, retries, err := c.UploadChunk(ctx, id, idx, data, opts.MaxChunkRetries)
		stats.ChunksSent += 1 + retries
		stats.ChunksRetried += retries
		stats.BytesSent += int64(len(data)) * int64(1+retries)
		if err != nil {
			return "", err
		}
		if ref := settledRef(cst, stats); ref != "" {
			return ref, nil
		}
	}
	fst, err := c.UploadComplete(ctx, id, total)
	if err != nil {
		return "", err
	}
	if ref := settledRef(fst, stats); ref != "" {
		return ref, nil
	}
	return "", fmt.Errorf("upload %s finished in state %s: %s", id, fst.State, fst.Error)
}

// settledRef extracts the graph_ref from a settled session status.
func settledRef(st *ingest.Status, stats *UploadStats) string {
	switch st.State {
	case ingest.StateShortCircuit:
		stats.ShortCircuit = true
		return st.GraphRef
	case ingest.StateComplete:
		return st.GraphRef
	}
	return ""
}

// uploadCall performs one upload-API request expecting a Status body.
func (c *Client) uploadCall(ctx context.Context, method, path string, body []byte, contentType string) (*ingest.Status, error) {
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		hreq.Header.Set("Content-Type", contentType)
	}
	if c.Tenant != "" {
		hreq.Header.Set(service.TenantHeader, c.Tenant)
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		defer hresp.Body.Close()
		return nil, decodeError(hresp)
	}
	return decodeUploadStatus(hresp)
}

// decodeUploadStatus reads a Status answer and closes the body.
func decodeUploadStatus(hresp *http.Response) (*ingest.Status, error) {
	defer hresp.Body.Close()
	var st ingest.Status
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding upload status: %w", err)
	}
	return &st, nil
}
