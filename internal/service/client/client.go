// Package client is the Go client of the dmgm job service: typed
// submission against the HTTP surface of internal/service (specified in
// docs/PROTOCOL.md §6), with backpressure-aware retries that honor the
// server's Retry-After hints. cmd/dmgm-load drives a daemon through this
// package; in-module code embedding the daemon can use it against an
// httptest server just the same.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// APIError is a non-200 service answer.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string.
	Message string
	// RetryAfter is the server's backpressure hint (0 if absent). Set on
	// 429 (queue full) and 503 (draining) answers.
	RetryAfter time.Duration
	// TraceID is the request's trace id from the X-DMGM-Trace answer header
	// (docs/PROTOCOL.md §9) — quote it when reporting a failure so the
	// operator can pull the job's span tree.
	TraceID string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// Retryable reports whether the error is pure backpressure — the request
// was fine, the server was momentarily full.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Client talks to one dmgm-serve daemon.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8321".
	Base string
	// HTTP is the underlying client; nil uses a default with no timeout
	// (job deadlines are enforced per call through the context).
	HTTP *http.Client
	// Tenant, when non-empty, is sent as the X-DMGM-Tenant header on every
	// job submission and upload call, accounting the work to that tenant's
	// quotas (docs/PROTOCOL.md §8). Empty means the server's default tenant.
	Tenant string
	// Traceparent, when non-empty, is sent as the W3C traceparent header on
	// every job submission, joining the job to the caller's own trace
	// (docs/PROTOCOL.md §9). Empty lets the server mint a fresh trace id;
	// either way Response.TraceID reports the id the job ran under.
	Traceparent string
}

// New builds a client for the given base URL (a bare host:port is
// completed to http://).
func New(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Submit posts one job and waits for its result. A non-200 answer returns
// an *APIError; transport failures return their underlying error.
func (c *Client) Submit(ctx context.Context, req *service.Request) (*service.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		hreq.Header.Set(service.TenantHeader, c.Tenant)
	}
	if c.Traceparent != "" {
		hreq.Header.Set(service.TraceparentHeader, c.Traceparent)
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var resp service.Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return &resp, nil
}

// SubmitRetry is Submit plus cooperative backpressure: on a retryable
// answer (429 queue full, 503 draining) it sleeps the server's Retry-After
// hint — or a one-second default — and tries again, up to maxRetries
// retries or the context's deadline. It returns the attempt count alongside
// the result, so load generators can report shed rates.
func (c *Client) SubmitRetry(ctx context.Context, req *service.Request, maxRetries int) (resp *service.Response, attempts int, err error) {
	for {
		attempts++
		resp, err = c.Submit(ctx, req)
		apiErr, isAPI := err.(*APIError)
		if err == nil || !isAPI || !apiErr.Retryable() || attempts > maxRetries {
			return resp, attempts, err
		}
		delay := apiErr.RetryAfter
		if delay <= 0 {
			delay = time.Second
		}
		select {
		case <-ctx.Done():
			return nil, attempts, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// Health polls /healthz; nil means the server is up and admitting jobs.
func (c *Client) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return decodeError(hresp)
	}
	return nil
}

// WaitReady polls Health until it succeeds or the deadline passes — for
// drivers that just started the daemon.
func (c *Client) WaitReady(ctx context.Context, deadline time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	for {
		err := c.Health(ctx)
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("service at %s not ready after %v: %w", c.Base, deadline, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// JobTrace fetches the retained span tree of a finished job from
// GET /v1/jobs/{id}/trace (docs/PROTOCOL.md §9). Only slow and failed jobs
// are retained (per the server's -trace-slow-ms policy) and the ring is
// bounded, so a 404 means "not retained", not "never ran".
func (c *Client) JobTrace(ctx context.Context, jobID string) (*service.JobTrace, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+jobID+"/trace", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var jt service.JobTrace
	if err := json.NewDecoder(hresp.Body).Decode(&jt); err != nil {
		return nil, fmt.Errorf("decoding trace: %w", err)
	}
	return &jt, nil
}

// Metrics scrapes /metrics into a registry snapshot — how dmgm-load reads
// the server-side cache hit and shed counters after a run.
func (c *Client) Metrics(ctx context.Context) (*obs.MetricsSnapshot, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var s obs.MetricsSnapshot
	if err := json.NewDecoder(hresp.Body).Decode(&s); err != nil {
		return nil, fmt.Errorf("decoding metrics: %w", err)
	}
	return &s, nil
}

// decodeError turns a non-200 answer into an *APIError, tolerating
// non-JSON bodies (proxies, http.Error plain text).
func decodeError(resp *http.Response) error {
	out := &APIError{
		Status:  resp.StatusCode,
		TraceID: resp.Header.Get(service.TraceHeader),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			out.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != "" {
		out.Message = eb.Error
	} else {
		out.Message = strings.TrimSpace(string(body))
	}
	return out
}
