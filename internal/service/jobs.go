// Package service is the serving layer of this repository: a long-running
// job daemon that accepts matching and coloring requests over HTTP JSON and
// executes them on a pool of reusable in-process mpi worlds.
//
// The paper's algorithms are cheap per run — message bundling and bounded
// rounds keep each job to a handful of supersteps — which makes them well
// suited to a request/response service; what dominates a one-shot CLI run
// (process start, partitioning, World construction) is exactly what a
// daemon amortizes. The serving layer therefore adds three reuse tiers:
//
//   - a World pool that recycles rank goroutine worlds across jobs
//     (mpi.World.Reset), so per-job World setup disappears;
//   - an LRU result cache keyed by (graph fingerprint, algorithm, params),
//     so repeated identical requests never recompute;
//   - per-tenant fair admission: every job and upload is accounted to a
//     tenant (the X-DMGM-Tenant header, or "default"), each tenant has a
//     token-bucket rate limit, a bounded queue, and concurrency budgets,
//     and a weighted deficit-round-robin dispatcher interleaves tenant
//     queues so a hot caller sheds (429 + Retry-After from its own
//     bucket) without starving anyone else.
//
// The HTTP surface is specified in docs/PROTOCOL.md §6 and the tenancy
// contract in §8; architecture context is DESIGN.md §9. Operational
// guidance (sizing, quota tuning, drain) is docs/OPERATIONS.md.
package service

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Algorithm names accepted in a job request.
const (
	AlgoMatch = "match"
	AlgoColor = "color"
)

// Request is one job submission, the JSON body of POST /v1/jobs.
//
// Exactly one of Graph (the inline text edge-list format of
// internal/graph), GraphPath (a daemon-local file in any supported format),
// and GraphRef (the fingerprint of a graph already held by the daemon —
// from a chunked upload, a prior job, or a previous path load) must be set.
// The remaining fields are the distributed-run parameters the
// dmgm-match / dmgm-color CLIs expose; zero values select the same defaults
// the CLIs use, so a service job and a CLI run with equal inputs produce
// byte-identical results.
type Request struct {
	// Algorithm is "match" or "color".
	Algorithm string `json:"algorithm"`
	// Graph is the graph inline, in the text edge-list format.
	Graph string `json:"graph,omitempty"`
	// GraphPath is a daemon-local graph file path (any supported format,
	// sniffed by content).
	GraphPath string `json:"graph_path,omitempty"`
	// GraphRef is a graph fingerprint resolved against the daemon's
	// content-addressed store (docs/PROTOCOL.md §7). An unknown ref — never
	// uploaded, or evicted — answers 404; re-upload to restore it.
	GraphRef string `json:"graph_ref,omitempty"`
	// Ranks is the number of ranks of the distributed run (default 4).
	Ranks int `json:"ranks,omitempty"`
	// Partition selects the partitioner: multilevel (default) | bfs |
	// block | random.
	Partition string `json:"partition,omitempty"`
	// Seed seeds the partitioner and the coloring tie-breaks (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Superstep is the coloring superstep size s (default 1000).
	Superstep int `json:"superstep,omitempty"`
	// Comm selects the coloring communication variant: neighbors (default)
	// | customized-all | broadcast.
	Comm string `json:"comm,omitempty"`
	// Distance2 selects the distance-2 coloring variant.
	Distance2 bool `json:"distance2,omitempty"`
	// NoBundle disables message bundling for matching (the ablation).
	NoBundle bool `json:"no_bundle,omitempty"`
	// TimeoutMillis caps this job's queue wait plus run time; 0 uses the
	// server default. The cap is clamped to the server default.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this job (the result is still
	// stored for later hits).
	NoCache bool `json:"no_cache,omitempty"`
}

// normalize fills defaults and validates the request shape (everything
// checkable without the graph). It returns a client-error message ("" = ok).
func (r *Request) normalize(maxRanks int) string {
	switch r.Algorithm {
	case AlgoMatch, AlgoColor:
	case "":
		return "algorithm is required: match | color"
	default:
		return fmt.Sprintf("unknown algorithm %q: want match | color", r.Algorithm)
	}
	sources := 0
	for _, set := range []bool{r.Graph != "", r.GraphPath != "", r.GraphRef != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return "exactly one of graph (inline), graph_path, and graph_ref must be set"
	}
	if r.Ranks == 0 {
		r.Ranks = 4
	}
	if r.Ranks < 1 {
		return fmt.Sprintf("ranks must be positive, got %d", r.Ranks)
	}
	if maxRanks > 0 && r.Ranks > maxRanks {
		return fmt.Sprintf("ranks %d exceeds the server bound %d", r.Ranks, maxRanks)
	}
	if r.Partition == "" {
		r.Partition = "multilevel"
	}
	switch r.Partition {
	case "multilevel", "bfs", "block", "random":
	default:
		return fmt.Sprintf("unknown partitioner %q: want multilevel | bfs | block | random", r.Partition)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Superstep == 0 {
		r.Superstep = 1000
	}
	if r.Superstep < 0 {
		return fmt.Sprintf("superstep must be positive, got %d", r.Superstep)
	}
	if r.Comm == "" {
		r.Comm = "neighbors"
	}
	switch r.Comm {
	case "neighbors", "customized-all", "broadcast":
	default:
		return fmt.Sprintf("unknown comm mode %q: want neighbors | customized-all | broadcast", r.Comm)
	}
	if r.Algorithm == AlgoMatch && r.Distance2 {
		return "distance2 applies to color jobs only"
	}
	if r.TimeoutMillis < 0 {
		return fmt.Sprintf("timeout_ms must be non-negative, got %d", r.TimeoutMillis)
	}
	return ""
}

// cacheKey derives the result-cache key: the graph content fingerprint plus
// every parameter that can change the result. Timeout and cache directives
// are deliberately excluded — they affect scheduling, never the answer.
func (r *Request) cacheKey(fingerprint string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|p%d|%s|s%d", fingerprint, r.Algorithm, r.Ranks, r.Partition, r.Seed)
	if r.Algorithm == AlgoColor {
		fmt.Fprintf(&b, "|ss%d|%s|d2=%v", r.Superstep, r.Comm, r.Distance2)
	} else {
		fmt.Fprintf(&b, "|nb=%v", r.NoBundle)
	}
	return b.String()
}

// timeout resolves the per-job deadline against the server default: jobs may
// shorten it, never extend it.
func (r *Request) timeout(def time.Duration) time.Duration {
	if r.TimeoutMillis <= 0 {
		return def
	}
	d := time.Duration(r.TimeoutMillis) * time.Millisecond
	if d > def {
		return def
	}
	return d
}

// buildPartition runs the requested partitioner — the same dispatch the CLIs
// use, so service and CLI runs agree bit-for-bit.
func (r *Request) buildPartition(g *graph.Graph) (*partition.Partition, error) {
	switch r.Partition {
	case "multilevel":
		return partition.Multilevel(g, r.Ranks, partition.MultilevelOptions{Seed: r.Seed})
	case "bfs":
		return partition.BFS(g, r.Ranks, r.Seed)
	case "block":
		return partition.Block1D(g, r.Ranks)
	case "random":
		return partition.Random(g, r.Ranks, r.Seed)
	default:
		return nil, fmt.Errorf("unknown partitioner %q", r.Partition)
	}
}

// Response is the job result, the JSON body of a 200 answer. Result carries
// the text serialization of the matching or coloring — byte-identical to
// what the dmgm-match / dmgm-color CLIs write with -o, which the conformance
// suite asserts.
type Response struct {
	JobID       string `json:"job_id"`
	Cached      bool   `json:"cached"`
	Algorithm   string `json:"algorithm"`
	Ranks       int    `json:"ranks"`
	Fingerprint string `json:"graph_fingerprint"`
	// Tenant is the tenant the job was accounted to (docs/PROTOCOL.md §8):
	// the X-DMGM-Tenant request header, or "default" for anonymous callers.
	Tenant string `json:"tenant,omitempty"`
	// TraceID is the request's W3C trace id (docs/PROTOCOL.md §9) — the
	// caller's own traceparent trace, or one the server minted. Stamped per
	// request, like Tenant: a cache hit reports the requester's trace, not
	// the producing run's.
	TraceID string `json:"trace_id,omitempty"`

	// Matching results.
	Weight      float64 `json:"weight,omitempty"`
	Cardinality int     `json:"cardinality,omitempty"`

	// Coloring results.
	Colors    int   `json:"colors,omitempty"`
	Rounds    int   `json:"rounds,omitempty"`
	Conflicts int64 `json:"conflicts,omitempty"`

	// Traffic totals of the run that produced the result. A cached answer
	// reports the producing run's traffic: the counts are a property of
	// (graph, partition, algorithm), not of the serving path.
	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`

	// Result is the text serialization of the matching/coloring.
	Result string `json:"result"`
	// ElapsedSeconds is the execution time of the producing run.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// errorBody is the JSON shape of every non-200 answer.
type errorBody struct {
	Error string `json:"error"`
}
