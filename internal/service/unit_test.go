package service

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	if ev := c.put("a", Response{JobID: "a"}); ev != 0 {
		t.Fatalf("put a evicted %d", ev)
	}
	c.put("b", Response{JobID: "b"})
	if _, ok := c.get("a"); !ok { // a is now most recently used
		t.Fatal("a missing")
	}
	if ev := c.put("c", Response{JobID: "c"}); ev != 1 {
		t.Fatalf("put c evicted %d, want 1", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted; LRU order wrong")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestResultCacheCopySemantics(t *testing.T) {
	c := newResultCache(4)
	c.put("k", Response{JobID: "orig", Result: "r"})
	got, ok := c.get("k")
	if !ok {
		t.Fatal("miss")
	}
	got.JobID = "stamped" // hits stamp a fresh id on their copy
	again, _ := c.get("k")
	if again.JobID != "orig" {
		t.Fatalf("cache entry mutated through a returned copy: %q", again.JobID)
	}
}

func TestResultCacheRefresh(t *testing.T) {
	c := newResultCache(2)
	c.put("k", Response{Result: "v1"})
	if ev := c.put("k", Response{Result: "v2"}); ev != 0 {
		t.Fatalf("refresh evicted %d", ev)
	}
	got, _ := c.get("k")
	if got.Result != "v2" {
		t.Fatalf("refresh kept %q", got.Result)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d after refresh, want 1", c.len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.put("k", Response{Result: "v"})
	if _, ok := c.get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.len())
	}
}

func TestWorldPoolReuse(t *testing.T) {
	reg := obs.NewRegistry()
	p := newWorldPool(time.Minute, 2, reg)
	w1, err := p.get(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Run(func(c *mpi.Comm) error { return nil }); err != nil {
		t.Fatal(err)
	}
	p.put(w1)
	if got := p.idle(); got != 1 {
		t.Fatalf("idle = %d, want 1", got)
	}
	w2, err := p.get(2)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatal("pool built a fresh world instead of reusing the idle one")
	}
	if got := reg.Counter("service.pool_worlds_reused").Load(); got != 1 {
		t.Fatalf("reused counter = %d, want 1", got)
	}
	// Different rank count: never cross-served.
	w3, err := p.get(4)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Size() != 4 {
		t.Fatalf("got a %d-rank world, want 4", w3.Size())
	}
	if got := reg.Counter("service.pool_worlds_created").Load(); got != 2 {
		t.Fatalf("created counter = %d, want 2", got)
	}
}

func TestWorldPoolDiscardsBeyondMaxIdle(t *testing.T) {
	reg := obs.NewRegistry()
	p := newWorldPool(time.Minute, 1, reg)
	w1, _ := p.get(2)
	w2, _ := p.get(2)
	p.put(w1)
	p.put(w2)
	if got := p.idle(); got != 1 {
		t.Fatalf("idle = %d, want 1 (maxIdle)", got)
	}
	if got := reg.Counter("service.pool_worlds_discarded").Load(); got != 1 {
		t.Fatalf("discarded counter = %d, want 1", got)
	}
}

func TestWorldPoolDiscardsUnresettable(t *testing.T) {
	reg := obs.NewRegistry()
	p := newWorldPool(time.Minute, 4, reg)
	w, err := p.get(2)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *mpi.Comm) error {
			started <- struct{}{}
			<-release
			return nil
		})
	}()
	<-started
	p.put(w) // ranks still running: Reset refuses, world must be dropped
	if got := p.idle(); got != 0 {
		t.Fatalf("idle = %d, want 0 — a running world entered the free list", got)
	}
	if got := reg.Counter("service.pool_worlds_discarded").Load(); got != 1 {
		t.Fatalf("discarded counter = %d, want 1", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeDefaultsAndErrors(t *testing.T) {
	ok := Request{Algorithm: AlgoMatch, Graph: "g 1 0\n"}
	if msg := ok.normalize(64); msg != "" {
		t.Fatalf("valid request rejected: %s", msg)
	}
	if ok.Ranks != 4 || ok.Partition != "multilevel" || ok.Seed != 1 || ok.Superstep != 1000 || ok.Comm != "neighbors" {
		t.Fatalf("defaults not filled: %+v", ok)
	}
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"missing algorithm", Request{Graph: "g"}, "algorithm is required"},
		{"unknown algorithm", Request{Algorithm: "sort", Graph: "g"}, "unknown algorithm"},
		{"no graph", Request{Algorithm: AlgoMatch}, "exactly one of"},
		{"both graphs", Request{Algorithm: AlgoMatch, Graph: "g", GraphPath: "p"}, "exactly one of"},
		{"negative ranks", Request{Algorithm: AlgoMatch, Graph: "g", Ranks: -1}, "ranks must be positive"},
		{"ranks over bound", Request{Algorithm: AlgoMatch, Graph: "g", Ranks: 65}, "exceeds the server bound"},
		{"unknown partitioner", Request{Algorithm: AlgoMatch, Graph: "g", Partition: "hash"}, "unknown partitioner"},
		{"unknown comm", Request{Algorithm: AlgoColor, Graph: "g", Comm: "gossip"}, "unknown comm mode"},
		{"distance2 on match", Request{Algorithm: AlgoMatch, Graph: "g", Distance2: true}, "color jobs only"},
		{"negative timeout", Request{Algorithm: AlgoMatch, Graph: "g", TimeoutMillis: -1}, "timeout_ms"},
	}
	for _, tc := range cases {
		if msg := tc.req.normalize(64); !strings.Contains(msg, tc.want) {
			t.Errorf("%s: normalize = %q, want substring %q", tc.name, msg, tc.want)
		}
	}
}

func TestCacheKeyCoversResultParams(t *testing.T) {
	base := Request{Algorithm: AlgoColor, Graph: "g"}
	if msg := base.normalize(64); msg != "" {
		t.Fatal(msg)
	}
	key := base.cacheKey("fp")
	variants := []func(r *Request){
		func(r *Request) { r.Ranks = 8 },
		func(r *Request) { r.Partition = "bfs" },
		func(r *Request) { r.Seed = 2 },
		func(r *Request) { r.Superstep = 500 },
		func(r *Request) { r.Comm = "broadcast" },
		func(r *Request) { r.Distance2 = true },
	}
	for i, mutate := range variants {
		v := base
		mutate(&v)
		if v.cacheKey("fp") == key {
			t.Errorf("variant %d did not change the cache key", i)
		}
	}
	if base.cacheKey("other") == key {
		t.Error("fingerprint not part of the cache key")
	}
	// Scheduling directives must NOT split the key: a cached result answers
	// requests regardless of their timeout.
	v := base
	v.TimeoutMillis = 5
	if v.cacheKey("fp") != key {
		t.Error("timeout_ms leaked into the cache key")
	}
	// Match ablation params split the key; color params stay out of match keys.
	m := Request{Algorithm: AlgoMatch, Graph: "g"}
	m.normalize(64)
	mk := m.cacheKey("fp")
	nb := m
	nb.NoBundle = true
	if nb.cacheKey("fp") == mk {
		t.Error("no_bundle not part of the match cache key")
	}
}

func TestRequestTimeoutClamped(t *testing.T) {
	def := time.Minute
	r := Request{}
	if got := r.timeout(def); got != def {
		t.Fatalf("zero timeout resolved to %v, want default", got)
	}
	r.TimeoutMillis = 100
	if got := r.timeout(def); got != 100*time.Millisecond {
		t.Fatalf("short timeout resolved to %v", got)
	}
	r.TimeoutMillis = (10 * time.Minute).Milliseconds()
	if got := r.timeout(def); got != def {
		t.Fatalf("long timeout not clamped: %v", got)
	}
}
