package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// collector is an in-process OTLP/HTTP collector recording every push, with
// a scriptable status so the drop path is testable too.
type collector struct {
	mu     sync.Mutex
	bodies map[string][][]byte
	status int // 0 = 200
	srv    *httptest.Server
}

func newCollector(status int) *collector {
	c := &collector{bodies: map[string][][]byte{}, status: status}
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, 0, 1<<16)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		c.mu.Lock()
		c.bodies[r.URL.Path] = append(c.bodies[r.URL.Path], body)
		status := c.status
		c.mu.Unlock()
		if status == 0 {
			status = http.StatusOK
		}
		w.WriteHeader(status)
		w.Write([]byte("{}")) //nolint:errcheck
	}))
	return c
}

// spans decodes every trace push into one flat list.
func (c *collector) spans(t *testing.T) []obs.OTLPSpan {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []obs.OTLPSpan
	for _, body := range c.bodies["/v1/traces"] {
		var req obs.OTLPTraceRequest
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("collector got unparsable trace push: %v", err)
		}
		for _, rs := range req.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				out = append(out, ss.Spans...)
			}
		}
	}
	return out
}

func (c *collector) pushes(path string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bodies[path])
}

// TestOTLPContinuousExportAndDrain is the daemon-lifecycle check: with -otlp
// set, job traces stream to the collector as jobs finish, metrics push at
// least once, and Stop drains the pipeline — everything enqueued before the
// shutdown is delivered, nothing is dropped against a healthy collector.
func TestOTLPContinuousExportAndDrain(t *testing.T) {
	_, gtext := testGraph(t)
	c := newCollector(0)
	defer c.srv.Close()

	srv, cl := startServer(t, service.Config{
		QueueLen: 8, Workers: 1,
		OTLPEndpoint: c.srv.URL,
		OTLPInterval: time.Hour, // only the final shutdown push fires
		RunID:        "daemon-test",
	}, true)

	const tid = "0af7651916cd43dd8448eb211c80319c"
	cl.Traceparent = obs.Traceparent(tid, "b7ad6b7169203331")
	if _, err := cl.Submit(context.Background(), &service.Request{
		Algorithm: service.AlgoColor, Graph: gtext, Ranks: 2,
	}); err != nil {
		t.Fatal(err)
	}

	// Scrape the drop/export counters before Stop closes the pipeline; the
	// handler outlives Stop, but the numbers to check are the drained ones.
	srv.Stop()
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["obs.otlp_dropped"] != 0 {
		t.Fatalf("dropped %d items against a healthy collector", m.Counters["obs.otlp_dropped"])
	}
	if m.Counters["obs.otlp_exported"] == 0 {
		t.Fatal("nothing exported")
	}

	spans := c.spans(t)
	if len(spans) == 0 {
		t.Fatal("collector received no spans")
	}
	svcSpans, rtSpans := 0, 0
	for _, s := range spans {
		if s.TraceID != tid {
			t.Fatalf("span %q landed in trace %q, want the job's %q", s.Name, s.TraceID, tid)
		}
		if strings.HasPrefix(s.Name, "serve.") {
			svcSpans++
		} else {
			rtSpans++
		}
	}
	if svcSpans == 0 || rtSpans == 0 {
		t.Fatalf("one trace must hold both layers: %d service spans, %d runtime spans", svcSpans, rtSpans)
	}
	// Stop's final pump push guarantees at least one metrics delivery even
	// with the periodic interval effectively disabled.
	if c.pushes("/v1/metrics") == 0 {
		t.Fatal("no metrics push reached the collector")
	}
}

// TestOTLPShutdownCountsDrops: a permanently failing collector (permanent
// 4xx = no retries) must never wedge the daemon — Stop still returns, and
// every lost item is counted in obs.otlp_dropped.
func TestOTLPShutdownCountsDrops(t *testing.T) {
	_, gtext := testGraph(t)
	c := newCollector(http.StatusNotFound)
	defer c.srv.Close()

	srv, cl := startServer(t, service.Config{
		QueueLen: 8, Workers: 1,
		OTLPEndpoint:     c.srv.URL,
		OTLPInterval:     time.Hour,
		OTLPDrainTimeout: 5 * time.Second,
	}, true)
	if _, err := cl.Submit(context.Background(), &service.Request{
		Algorithm: service.AlgoMatch, Graph: gtext, Ranks: 2,
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { srv.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Stop wedged on a failing collector")
	}
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["obs.otlp_dropped"] == 0 {
		t.Fatal("losses against a permanently failing collector were not counted")
	}
	if m.Counters["obs.otlp_exported"] != 0 {
		t.Fatalf("exported %d items through a collector that rejects everything", m.Counters["obs.otlp_exported"])
	}
}
