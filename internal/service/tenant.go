package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"regexp"
	"sync"
	"time"

	"repro/internal/obs"
)

// TenantHeader is the HTTP header naming the caller's tenant
// (docs/PROTOCOL.md §8). Requests without it belong to DefaultTenant.
const TenantHeader = "X-DMGM-Tenant"

// DefaultTenant is the tenant id of anonymous callers — requests that carry
// no TenantHeader. It is always present in the scheduler and is also the
// fold-over tenant when the distinct-tenant bound is reached.
const DefaultTenant = "default"

// tenantNameRe bounds tenant ids: they become metric names and log fields,
// so the charset is deliberately narrow.
var tenantNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// tenantFrom resolves a request's tenant id. An absent header is the
// default tenant; a malformed one reports !ok and the caller answers 400.
func tenantFrom(r *http.Request) (string, bool) {
	t := r.Header.Get(TenantHeader)
	if t == "" {
		return DefaultTenant, true
	}
	if !tenantNameRe.MatchString(t) {
		return "", false
	}
	return t, true
}

// TenantPolicy is one tenant's admission budget. The zero value is the
// permissive default: weight 1, no rate limit, the server's queue bound,
// and unlimited concurrency and uploads.
type TenantPolicy struct {
	// Weight is the tenant's share in the weighted round-robin dispatcher:
	// with queues saturated, a weight-3 tenant is dispatched three jobs for
	// every one of a weight-1 tenant (default 1).
	Weight int `json:"weight,omitempty"`
	// RatePerSec is the token-bucket refill rate gating submissions and
	// upload opens; 0 disables rate limiting for the tenant.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity — how many requests may arrive at once
	// before the rate applies (default ceil(RatePerSec), at least 1).
	Burst int `json:"burst,omitempty"`
	// MaxQueued bounds the tenant's own admission queue; beyond it
	// submissions are shed with a per-tenant 429 (default: the server's
	// QueueLen).
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxConcurrent bounds the tenant's jobs executing at once; a tenant at
	// its budget keeps its queue and is skipped by the dispatcher until a
	// job finishes (0 = no per-tenant bound; the worker pool still bounds
	// the total).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxUploads bounds the tenant's concurrently open upload sessions
	// (0 = no per-tenant bound; the server's MaxUploadSessions still
	// applies globally).
	MaxUploads int `json:"max_uploads,omitempty"`
}

// normalize fills defaults in place. defaultQueue is the server's global
// queue bound, inherited by tenants that do not set their own.
func (p *TenantPolicy) normalize(defaultQueue int) {
	if p.Weight <= 0 {
		p.Weight = 1
	}
	if p.RatePerSec < 0 {
		p.RatePerSec = 0
	}
	if p.Burst <= 0 {
		if p.RatePerSec > 0 {
			p.Burst = int(math.Ceil(p.RatePerSec))
		}
		if p.Burst < 1 {
			p.Burst = 1
		}
	}
	if p.MaxQueued <= 0 {
		p.MaxQueued = defaultQueue
	}
	if p.MaxConcurrent < 0 {
		p.MaxConcurrent = 0
	}
	if p.MaxUploads < 0 {
		p.MaxUploads = 0
	}
}

// TenantPolicies is the full admission configuration: a default policy for
// tenants not named, plus per-tenant overrides. The zero value (and a nil
// *TenantPolicies) applies the permissive default policy to every tenant.
//
// The type is the JSON shape of the dmgm-serve `-tenants` file, reloadable
// at runtime via SIGHUP (see docs/OPERATIONS.md):
//
//	{
//	  "default": {"weight": 1},
//	  "tenants": {
//	    "batch":       {"weight": 1, "rate_per_sec": 5, "max_queued": 8},
//	    "interactive": {"weight": 3}
//	  }
//	}
type TenantPolicies struct {
	// Default applies to every tenant without an entry in Tenants.
	Default TenantPolicy `json:"default"`
	// Tenants maps tenant ids to their overriding policies.
	Tenants map[string]TenantPolicy `json:"tenants,omitempty"`
}

// Validate rejects malformed policy sets: bad tenant names and negative
// budgets. Called by LoadTenantPolicies; call it directly when building
// policies in code from untrusted input.
func (tp *TenantPolicies) Validate() error {
	check := func(name string, p TenantPolicy) error {
		if p.Weight < 0 || p.RatePerSec < 0 || p.Burst < 0 ||
			p.MaxQueued < 0 || p.MaxConcurrent < 0 || p.MaxUploads < 0 {
			return fmt.Errorf("tenant %q: negative budget in %+v", name, p)
		}
		return nil
	}
	if err := check("default", tp.Default); err != nil {
		return err
	}
	for name, p := range tp.Tenants {
		if !tenantNameRe.MatchString(name) {
			return fmt.Errorf("invalid tenant id %q: want %s", name, tenantNameRe)
		}
		if err := check(name, p); err != nil {
			return err
		}
	}
	return nil
}

// policyFor resolves the effective (un-normalized) policy for a tenant.
func (tp *TenantPolicies) policyFor(name string) TenantPolicy {
	if tp == nil {
		return TenantPolicy{}
	}
	if p, ok := tp.Tenants[name]; ok {
		return p
	}
	return tp.Default
}

// LoadTenantPolicies reads and validates a `-tenants` JSON file. Unknown
// fields are rejected so a typo in an operator's config fails loudly at
// load (or SIGHUP) time instead of silently applying defaults.
func LoadTenantPolicies(path string) (*TenantPolicies, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var tp TenantPolicies
	if err := dec.Decode(&tp); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	if err := tp.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &tp, nil
}

// tenantQueue is one tenant's admission state: its FIFO of admitted jobs,
// its deficit-round-robin credit, its token bucket, and its budgets' usage.
// Every field is guarded by the owning scheduler's mutex.
type tenantQueue struct {
	name string
	pol  TenantPolicy // normalized

	fifo    []*job
	head    int // fifo[head:] are the queued jobs; amortizes pop-front
	deficit int // remaining round-robin credit, in jobs
	running int // jobs of this tenant occupying workers
	uploads int // open upload sessions

	tokens   float64   // token bucket level
	lastFill time.Time // zero until the bucket's first refill

	// Instruments (nil-safe no-ops without a registry).
	submitted  *obs.Counter
	admitted   *obs.Counter
	rejected   *obs.Counter // all per-tenant 429s (rate + queue)
	rejRate    *obs.Counter
	rejQueue   *obs.Counter
	completed  *obs.Counter
	upRejected *obs.Counter
	depth      *obs.Gauge
	runningG   *obs.Gauge
	uploadsG   *obs.Gauge
	lat        *obs.Histogram
	qwait      *obs.Histogram // queue wait, dispatch minus enqueue
	runh       *obs.Histogram // run time on the worker (partition + supersteps)
}

// queuedLocked reports the tenant's queue depth.
func (tq *tenantQueue) queuedLocked() int { return len(tq.fifo) - tq.head }

// refillLocked tops the token bucket up for the elapsed time.
func (tq *tenantQueue) refillLocked(now time.Time) {
	if tq.pol.RatePerSec <= 0 {
		return
	}
	if tq.lastFill.IsZero() {
		tq.tokens = float64(tq.pol.Burst)
		tq.lastFill = now
		return
	}
	if d := now.Sub(tq.lastFill); d > 0 {
		tq.tokens += d.Seconds() * tq.pol.RatePerSec
		if max := float64(tq.pol.Burst); tq.tokens > max {
			tq.tokens = max
		}
		tq.lastFill = now
	}
}

// tenantSched is the multi-tenant admission scheduler: per-tenant FIFO
// queues dispatched by weighted deficit round-robin, with per-tenant token
// buckets and concurrency/upload budgets in front. One mutex guards all
// scheduling state; workers block on the condition variable when no tenant
// is dispatchable. All methods are safe for concurrent use.
type tenantSched struct {
	mu           sync.Mutex
	cond         *sync.Cond
	reg          *obs.Registry
	policies     *TenantPolicies
	defaultQueue int
	maxTenants   int
	now          func() time.Time // injectable clock for tests

	tenants map[string]*tenantQueue
	ring    []*tenantQueue // creation order; the DRR visiting order
	cur     int            // ring index the dispatcher resumes at
	queued  int            // total queued jobs across tenants
	stopped bool

	depthAll *obs.Gauge   // service.queue_depth (total across tenants)
	tenantsG *obs.Gauge   // service.tenants
	folded   *obs.Counter // service.tenant_overflow_folded
}

// newTenantSched builds the scheduler. pol may be nil (permissive defaults
// for everyone); the default tenant's queue always exists so fold-over has
// a target.
func newTenantSched(pol *TenantPolicies, defaultQueue, maxTenants int, reg *obs.Registry) *tenantSched {
	s := &tenantSched{
		reg:          reg,
		policies:     pol,
		defaultQueue: defaultQueue,
		maxTenants:   maxTenants,
		now:          time.Now,
		tenants:      make(map[string]*tenantQueue),
		depthAll:     reg.Gauge("service.queue_depth"),
		tenantsG:     reg.Gauge("service.tenants"),
		folded:       reg.Counter("service.tenant_overflow_folded"),
	}
	s.cond = sync.NewCond(&s.mu)
	s.mu.Lock()
	s.addTenantLocked(DefaultTenant)
	s.mu.Unlock()
	return s
}

// addTenantLocked creates a tenant queue under its configured policy.
func (s *tenantSched) addTenantLocked(name string) *tenantQueue {
	pol := s.policies.policyFor(name)
	pol.normalize(s.defaultQueue)
	tq := &tenantQueue{
		name:       name,
		pol:        pol,
		submitted:  s.reg.Counter("service.tenant." + name + ".submitted"),
		admitted:   s.reg.Counter("service.tenant." + name + ".admitted"),
		rejected:   s.reg.Counter("service.tenant." + name + ".rejected"),
		rejRate:    s.reg.Counter("service.tenant." + name + ".rejected_rate"),
		rejQueue:   s.reg.Counter("service.tenant." + name + ".rejected_queue"),
		completed:  s.reg.Counter("service.tenant." + name + ".completed"),
		upRejected: s.reg.Counter("service.tenant." + name + ".uploads_rejected"),
		depth:      s.reg.Gauge("service.tenant." + name + ".queue_depth"),
		runningG:   s.reg.Gauge("service.tenant." + name + ".running"),
		uploadsG:   s.reg.Gauge("service.tenant." + name + ".uploads_open"),
		lat:        s.reg.Histogram("service.tenant."+name+".latency_ms", obs.ExpBounds(1, 1<<22)),
		qwait:      s.reg.Histogram("service.tenant."+name+".queue_wait_ms", obs.ExpBounds(1, 1<<22)),
		runh:       s.reg.Histogram("service.tenant."+name+".run_ms", obs.ExpBounds(1, 1<<22)),
	}
	s.tenants[name] = tq
	s.ring = append(s.ring, tq)
	s.tenantsG.Set(int64(len(s.ring)))
	return tq
}

// tenantFor resolves (creating on first sight) a tenant's queue. Beyond
// maxTenants distinct tenants, new names fold into the default tenant's
// queue and budgets — the table cannot be grown without bound by a caller
// inventing header values.
func (s *tenantSched) tenantFor(name string) *tenantQueue {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tq, ok := s.tenants[name]; ok {
		return tq
	}
	if len(s.ring) >= s.maxTenants {
		s.folded.Inc()
		return s.tenants[DefaultTenant]
	}
	return s.addTenantLocked(name)
}

// takeToken consumes one rate token, or reports how many seconds until the
// tenant's own bucket grants one (the Retry-After derivation of
// docs/PROTOCOL.md §8).
func (s *tenantSched) takeToken(tq *tenantQueue) (retryAfterSecs int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tq.pol.RatePerSec <= 0 {
		return 0, true
	}
	tq.refillLocked(s.now())
	if tq.tokens >= 1 {
		tq.tokens--
		return 0, true
	}
	secs := int(math.Ceil((1 - tq.tokens) / tq.pol.RatePerSec))
	if secs < 1 {
		secs = 1
	}
	return secs, false
}

// enqueue appends an admitted job to its tenant's queue; false means the
// tenant's own queue is full (shed with a per-tenant 429 — other tenants'
// queues are unaffected).
func (s *tenantSched) enqueue(tq *tenantQueue, j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tq.queuedLocked() >= tq.pol.MaxQueued {
		return false
	}
	tq.fifo = append(tq.fifo, j)
	s.queued++
	tq.depth.Set(int64(tq.queuedLocked()))
	s.depthAll.Set(int64(s.queued))
	s.cond.Signal()
	return true
}

// next blocks until a job is dispatchable (or the scheduler stops) and
// returns it with its tenant, which is charged one running slot; the worker
// must release(tq) when the job leaves its worker.
func (s *tenantSched) next() (*job, *tenantQueue, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return nil, nil, false
		}
		if j, tq := s.popLocked(); j != nil {
			tq.running++
			tq.runningG.Set(int64(tq.running))
			return j, tq, true
		}
		s.cond.Wait()
	}
}

// popLocked is the deficit-round-robin dispatch: visit tenants in ring
// order starting at cur; an eligible tenant (jobs queued, concurrency
// budget free) is granted its weight in credit on arrival and dispatched
// one job per credit before the pointer moves on. Saturated queues
// therefore interleave in weight proportion — a weight-3 tenant sends
// three jobs for a weight-1 tenant's one — while a tenant at its
// concurrency budget is skipped with its credit intact.
func (s *tenantSched) popLocked() (*job, *tenantQueue) {
	n := len(s.ring)
	for scanned := 0; scanned < n; scanned++ {
		i := (s.cur + scanned) % n
		tq := s.ring[i]
		if tq.queuedLocked() == 0 {
			tq.deficit = 0 // credit does not accumulate while idle
			continue
		}
		if tq.pol.MaxConcurrent > 0 && tq.running >= tq.pol.MaxConcurrent {
			continue // budget-blocked: skipped, credit intact
		}
		if tq.deficit <= 0 {
			tq.deficit = tq.pol.Weight
		}
		tq.deficit--
		j := tq.fifo[tq.head]
		tq.fifo[tq.head] = nil // release the job reference for GC
		tq.head++
		if tq.head == len(tq.fifo) {
			tq.fifo = tq.fifo[:0]
			tq.head = 0
		}
		s.queued--
		tq.depth.Set(int64(tq.queuedLocked()))
		s.depthAll.Set(int64(s.queued))
		if tq.deficit > 0 && tq.queuedLocked() > 0 {
			s.cur = i // credit left: this tenant continues next pop
		} else {
			if tq.queuedLocked() == 0 {
				tq.deficit = 0
			}
			s.cur = (i + 1) % n
		}
		return j, tq
	}
	return nil, nil
}

// release returns a tenant's running slot when its job leaves the worker
// (finished, failed, or timed out). Broadcast, not Signal: freeing a slot
// can make a budget-blocked tenant dispatchable for several waiting
// workers at once.
func (s *tenantSched) release(tq *tenantQueue) {
	s.mu.Lock()
	tq.running--
	tq.runningG.Set(int64(tq.running))
	s.cond.Broadcast()
	s.mu.Unlock()
}

// addUpload charges one open upload session against the tenant's budget;
// false means the tenant is at its cap.
func (s *tenantSched) addUpload(tq *tenantQueue) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tq.pol.MaxUploads > 0 && tq.uploads >= tq.pol.MaxUploads {
		return false
	}
	tq.uploads++
	tq.uploadsG.Set(int64(tq.uploads))
	return true
}

// dropUpload releases an upload session's budget charge.
func (s *tenantSched) dropUpload(tq *tenantQueue) {
	s.mu.Lock()
	tq.uploads--
	tq.uploadsG.Set(int64(tq.uploads))
	s.mu.Unlock()
}

// totalQueued reports the queued-job total across tenants.
func (s *tenantSched) totalQueued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// depths reports every tenant's current queue depth (the healthz body).
func (s *tenantSched) depths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.ring))
	for _, tq := range s.ring {
		out[tq.name] = tq.queuedLocked()
	}
	return out
}

// setPolicies swaps the policy set at runtime (the SIGHUP reload path).
// Existing tenant queues are re-bound to their new policies in place:
// queued jobs stay queued, bucket levels carry over clamped to the new
// burst, and a bucket switching from unlimited to rate-limited starts
// full.
func (s *tenantSched) setPolicies(p *TenantPolicies) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policies = p
	now := s.now()
	for _, tq := range s.ring {
		np := p.policyFor(tq.name)
		np.normalize(s.defaultQueue)
		switch {
		case np.RatePerSec <= 0:
			tq.tokens, tq.lastFill = 0, time.Time{}
		case tq.pol.RatePerSec <= 0:
			tq.tokens, tq.lastFill = float64(np.Burst), now
		default:
			tq.refillLocked(now)
			if max := float64(np.Burst); tq.tokens > max {
				tq.tokens = max
			}
		}
		tq.pol = np
	}
	// New weights or budgets may unblock waiting workers.
	s.cond.Broadcast()
}

// stop wakes every blocked worker into its exit path. Idempotent.
func (s *tenantSched) stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
