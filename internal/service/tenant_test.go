package service

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestTenantFromHeader(t *testing.T) {
	cases := []struct {
		header string
		want   string
		ok     bool
	}{
		{"", DefaultTenant, true},
		{"alice", "alice", true},
		{"team-a.batch_7", "team-a.batch_7", true},
		{"-leading-dash", "", false},
		{"has space", "", false},
		{"über", "", false},
		{"x123456789012345678901234567890123456789012345678901234567890123456789", "", false}, // > 64 chars
	}
	for _, tc := range cases {
		r := httptest.NewRequest("POST", "/v1/jobs", nil)
		if tc.header != "" {
			r.Header.Set(TenantHeader, tc.header)
		}
		got, ok := tenantFrom(r)
		if ok != tc.ok || got != tc.want {
			t.Errorf("tenantFrom(%q) = (%q, %v), want (%q, %v)", tc.header, got, ok, tc.want, tc.ok)
		}
	}
}

func TestTenantPolicyNormalize(t *testing.T) {
	p := TenantPolicy{}
	p.normalize(32)
	if p.Weight != 1 || p.Burst != 1 || p.MaxQueued != 32 || p.RatePerSec != 0 {
		t.Fatalf("zero-value normalize = %+v", p)
	}
	p = TenantPolicy{RatePerSec: 2.5}
	p.normalize(32)
	if p.Burst != 3 {
		t.Fatalf("burst = %d, want ceil(2.5) = 3", p.Burst)
	}
	p = TenantPolicy{Weight: 5, MaxQueued: 4}
	p.normalize(32)
	if p.Weight != 5 || p.MaxQueued != 4 {
		t.Fatalf("explicit fields overwritten: %+v", p)
	}
}

func TestLoadTenantPolicies(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("good.json", `{
		"default": {"weight": 1},
		"tenants": {
			"hot": {"weight": 1, "rate_per_sec": 5, "max_queued": 8},
			"bg":  {"weight": 3}
		}
	}`)
	tp, err := LoadTenantPolicies(good)
	if err != nil {
		t.Fatal(err)
	}
	if got := tp.policyFor("bg").Weight; got != 3 {
		t.Fatalf("bg weight = %d, want 3", got)
	}
	if got := tp.policyFor("unlisted"); got != tp.Default {
		t.Fatalf("unlisted tenant policy = %+v, want the default", got)
	}

	// A typo'd field must fail loudly, not silently apply defaults.
	typo := write("typo.json", `{"default": {"wieght": 3}}`)
	if _, err := LoadTenantPolicies(typo); err == nil {
		t.Fatal("unknown field accepted")
	}
	badName := write("badname.json", `{"tenants": {"no spaces": {}}}`)
	if _, err := LoadTenantPolicies(badName); err == nil {
		t.Fatal("invalid tenant name accepted")
	}
	negative := write("neg.json", `{"tenants": {"a": {"weight": -1}}}`)
	if _, err := LoadTenantPolicies(negative); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// testSched builds a scheduler with a frozen, manually-advanced clock.
func testSched(pol *TenantPolicies, queueLen, maxTenants int) (*tenantSched, *time.Time) {
	s := newTenantSched(pol, queueLen, maxTenants, nil)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	return s, &now
}

func TestTokenBucketRetryAfter(t *testing.T) {
	pol := &TenantPolicies{Tenants: map[string]TenantPolicy{
		"a": {RatePerSec: 2, Burst: 2},
	}}
	s, now := testSched(pol, 32, 64)
	tq := s.tenantFor("a")

	for i := 0; i < 2; i++ {
		if secs, ok := s.takeToken(tq); !ok {
			t.Fatalf("burst token %d denied (retry %ds)", i, secs)
		}
	}
	secs, ok := s.takeToken(tq)
	if ok {
		t.Fatal("token granted beyond burst")
	}
	if secs != 1 { // ceil(1 token / 2 per sec) = 1
		t.Fatalf("retry-after = %ds, want 1", secs)
	}

	*now = now.Add(500 * time.Millisecond) // refills one token
	if _, ok := s.takeToken(tq); !ok {
		t.Fatal("token denied after refill")
	}
	if _, ok := s.takeToken(tq); ok {
		t.Fatal("second token granted without refill")
	}

	// An unlimited tenant never blocks.
	def := s.tenantFor(DefaultTenant)
	for i := 0; i < 100; i++ {
		if _, ok := s.takeToken(def); !ok {
			t.Fatal("unlimited tenant rate-limited")
		}
	}
}

// popAll drains the scheduler through the DRR dispatcher, returning the
// tenant name of each dispatched job in order. Running slots are released
// immediately so concurrency budgets don't interfere.
func popAll(s *tenantSched) []string {
	var order []string
	for {
		s.mu.Lock()
		j, tq := s.popLocked()
		s.mu.Unlock()
		if j == nil {
			return order
		}
		order = append(order, tq.name)
	}
}

func TestWeightedDRROrder(t *testing.T) {
	pol := &TenantPolicies{Tenants: map[string]TenantPolicy{
		"big":   {Weight: 3},
		"small": {Weight: 1},
	}}
	s, _ := testSched(pol, 32, 64)
	big, small := s.tenantFor("big"), s.tenantFor("small")
	for i := 0; i < 6; i++ {
		s.enqueue(big, &job{})
	}
	for i := 0; i < 2; i++ {
		s.enqueue(small, &job{})
	}

	got := popAll(s)
	want := []string{"big", "big", "big", "small", "big", "big", "big", "small"}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
	if s.totalQueued() != 0 {
		t.Fatalf("queued = %d after drain", s.totalQueued())
	}
}

func TestDRRIdleCreditDoesNotAccumulate(t *testing.T) {
	pol := &TenantPolicies{Tenants: map[string]TenantPolicy{"a": {Weight: 4}}}
	s, _ := testSched(pol, 32, 64)
	a := s.tenantFor("a")

	// One job leaves the tenant idle with unspent credit; the credit must
	// not survive into the next burst.
	s.enqueue(a, &job{})
	popAll(s)
	s.mu.Lock()
	if a.deficit != 0 {
		s.mu.Unlock()
		t.Fatalf("idle tenant kept %d credit", a.deficit)
	}
	s.mu.Unlock()
}

func TestConcurrencyBudgetSkips(t *testing.T) {
	pol := &TenantPolicies{Tenants: map[string]TenantPolicy{
		"capped": {Weight: 3, MaxConcurrent: 1},
		"other":  {Weight: 1},
	}}
	s, _ := testSched(pol, 32, 64)
	capped, other := s.tenantFor("capped"), s.tenantFor("other")
	s.enqueue(capped, &job{})
	s.enqueue(capped, &job{})
	s.enqueue(other, &job{})

	j1, tq1, _ := s.next()
	if j1 == nil || tq1 != capped {
		t.Fatalf("first dispatch from %v, want capped", tq1)
	}
	// capped is at its budget: the dispatcher must skip to other even
	// though capped has credit and queued jobs.
	_, tq2, _ := s.next()
	if tq2 != other {
		t.Fatalf("second dispatch from %q, want other (capped is budget-blocked)", tq2.name)
	}
	// Releasing the slot unblocks the capped tenant.
	s.release(capped)
	_, tq3, _ := s.next()
	if tq3 != capped {
		t.Fatalf("third dispatch from %q, want capped after release", tq3.name)
	}
}

func TestTenantFoldOverBeyondMax(t *testing.T) {
	s, _ := testSched(nil, 32, 2) // default + one more
	a := s.tenantFor("a")
	if a.name != "a" {
		t.Fatalf("tenant a folded prematurely into %q", a.name)
	}
	b := s.tenantFor("b")
	if b.name != DefaultTenant {
		t.Fatalf("tenant beyond the bound got its own queue %q", b.name)
	}
	// The fold is per-request, not sticky: a keeps its queue.
	if again := s.tenantFor("a"); again != a {
		t.Fatal("existing tenant lost its queue")
	}
}

func TestSetPoliciesRebindsBuckets(t *testing.T) {
	pol := &TenantPolicies{Tenants: map[string]TenantPolicy{
		"a": {RatePerSec: 1, Burst: 1},
	}}
	s, _ := testSched(pol, 32, 64)
	a := s.tenantFor("a")
	if _, ok := s.takeToken(a); !ok {
		t.Fatal("initial token denied")
	}
	if _, ok := s.takeToken(a); ok {
		t.Fatal("token granted with empty bucket")
	}

	// Rate limit lifted: the tenant is unlimited at once.
	s.setPolicies(&TenantPolicies{})
	for i := 0; i < 10; i++ {
		if _, ok := s.takeToken(a); !ok {
			t.Fatal("token denied after limit lifted")
		}
	}

	// Rate limit re-imposed: the bucket starts full (burst 2), then empties.
	s.setPolicies(&TenantPolicies{Tenants: map[string]TenantPolicy{
		"a": {RatePerSec: 0.001, Burst: 2},
	}})
	for i := 0; i < 2; i++ {
		if _, ok := s.takeToken(a); !ok {
			t.Fatalf("burst token %d denied after re-imposing limit", i)
		}
	}
	secs, ok := s.takeToken(a)
	if ok {
		t.Fatal("token granted beyond re-imposed burst")
	}
	if secs < 1 {
		t.Fatalf("retry-after = %ds, want >= 1", secs)
	}

	// Weights change live too: queued jobs stay queued under new weights.
	s.enqueue(a, &job{})
	if s.totalQueued() != 1 {
		t.Fatal("queued job lost across setPolicies")
	}
}

func TestSchedStopWakesWorkers(t *testing.T) {
	s, _ := testSched(nil, 32, 64)
	done := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, ok := s.next()
			done <- ok
		}()
	}
	time.Sleep(10 * time.Millisecond) // let both block on the cond
	s.stop()
	for i := 0; i < 2; i++ {
		select {
		case ok := <-done:
			if ok {
				t.Fatal("next returned a job after stop")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("worker still blocked after stop")
		}
	}
}

func TestUploadBudget(t *testing.T) {
	pol := &TenantPolicies{Tenants: map[string]TenantPolicy{
		"a": {MaxUploads: 2},
	}}
	s, _ := testSched(pol, 32, 64)
	a := s.tenantFor("a")
	if !s.addUpload(a) || !s.addUpload(a) {
		t.Fatal("uploads within budget denied")
	}
	if s.addUpload(a) {
		t.Fatal("upload beyond budget admitted")
	}
	s.dropUpload(a)
	if !s.addUpload(a) {
		t.Fatal("upload denied after a slot freed")
	}
	// Unbounded tenants never block.
	def := s.tenantFor(DefaultTenant)
	for i := 0; i < 100; i++ {
		if !s.addUpload(def) {
			t.Fatal("unbounded tenant upload denied")
		}
	}
}
