package service

import (
	"sync"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// worldPool recycles in-process mpi.Worlds across jobs, one free list per
// rank count. A World's construction cost (mailboxes, barrier, collectives,
// counter arrays) is paid once; between jobs the pool calls World.Reset,
// which drains stale traffic and zeroes per-rank stats so every job sees a
// bit-identical substrate to a fresh World. A World whose Reset fails —
// ranks still running after a deadline abandonment — is discarded, never
// handed to another job.
type worldPool struct {
	mu       sync.Mutex
	free     map[int][]*mpi.World
	maxIdle  int           // per rank count; excess Puts discard
	deadline time.Duration // watchdog on pooled worlds

	// Pool traffic metrics (nil-safe when the registry is nil).
	created   *obs.Counter
	reused    *obs.Counter
	discarded *obs.Counter
	staleMsgs *obs.Counter
}

// newWorldPool builds a pool whose worlds carry the given run watchdog.
// maxIdle bounds the idle worlds kept per rank count (0 = a sane default).
func newWorldPool(deadline time.Duration, maxIdle int, reg *obs.Registry) *worldPool {
	if maxIdle <= 0 {
		maxIdle = 8
	}
	return &worldPool{
		free:      make(map[int][]*mpi.World),
		maxIdle:   maxIdle,
		deadline:  deadline,
		created:   reg.Counter("service.pool_worlds_created"),
		reused:    reg.Counter("service.pool_worlds_reused"),
		discarded: reg.Counter("service.pool_worlds_discarded"),
		staleMsgs: reg.Counter("service.pool_stale_msgs"),
	}
}

// get returns a runnable world of the given rank count, reusing an idle one
// when available.
func (p *worldPool) get(ranks int) (*mpi.World, error) {
	p.mu.Lock()
	if ws := p.free[ranks]; len(ws) > 0 {
		w := ws[len(ws)-1]
		p.free[ranks] = ws[:len(ws)-1]
		p.mu.Unlock()
		p.reused.Inc()
		return w, nil
	}
	p.mu.Unlock()
	w, err := mpi.NewWorld(ranks, mpi.WithDeadline(p.deadline))
	if err != nil {
		return nil, err
	}
	p.created.Inc()
	return w, nil
}

// put resets a world and returns it to the free list; a world that cannot
// be reset (or an over-full list) is dropped for the GC.
func (p *worldPool) put(w *mpi.World) {
	// Detach the job's observer so an idle world holds no reference to a
	// finished job's registry and span rings. Refused while ranks are still
	// running — exactly the case Reset below also refuses and discards.
	w.SetObserver(nil) //nolint:errcheck // Reset catches the running case
	stale, err := w.Reset()
	p.staleMsgs.Add(int64(stale))
	if err != nil {
		p.discarded.Inc()
		return
	}
	ranks := w.Size()
	p.mu.Lock()
	if len(p.free[ranks]) >= p.maxIdle {
		p.mu.Unlock()
		p.discarded.Inc()
		return
	}
	p.free[ranks] = append(p.free[ranks], w)
	p.mu.Unlock()
}

// idle reports the total idle worlds across rank counts (for the
// service.pool_idle gauge).
func (p *worldPool) idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ws := range p.free {
		n += len(ws)
	}
	return n
}
