// Package docs holds repository documentation checks. TestMarkdownLinks is
// an offline link checker over every *.md file: relative links must point at
// files that exist and fragment anchors at headings that exist. It runs in CI
// (the docs job) so documentation cannot silently drift from the tree — no
// network access, external URLs are not followed.
package docs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot walks up from the test's working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// markdownFiles lists every tracked *.md, skipping dot-directories.
func markdownFiles(t *testing.T, root string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && strings.HasPrefix(d.Name(), ".") && path != root {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

var (
	linkRe    = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)
	headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.*)$`)
	// anchorStrip removes characters GitHub drops when slugging a heading.
	anchorStrip = regexp.MustCompile(`[^\p{L}\p{N} _-]`)
)

// slug approximates GitHub's heading-to-anchor transformation.
func slug(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	// Inline code and emphasis markers vanish before slugging.
	s = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(s)
	s = anchorStrip.ReplaceAllString(s, "")
	return strings.ReplaceAll(s, " ", "-")
}

// anchors returns the set of heading anchors defined in a markdown body.
func anchors(body string) map[string]bool {
	out := map[string]bool{}
	for _, m := range headingRe.FindAllStringSubmatch(stripFences(body), -1) {
		out[slug(m[1])] = true
	}
	return out
}

// stripFences blanks ``` code blocks so their contents are neither links nor
// headings.
func stripFences(body string) string {
	lines := strings.Split(body, "\n")
	fenced := false
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "```") {
			fenced = !fenced
			lines[i] = ""
			continue
		}
		if fenced {
			lines[i] = ""
		}
	}
	return strings.Join(lines, "\n")
}

func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	bodies := map[string]string{}
	for _, f := range markdownFiles(t, root) {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		bodies[f] = string(b)
	}
	for file, body := range bodies {
		rel, _ := filepath.Rel(root, file)
		for _, m := range linkRe.FindAllStringSubmatch(stripFences(body), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external: not checked offline
			}
			path, frag, _ := strings.Cut(target, "#")
			dest := file
			if path != "" {
				dest = filepath.Join(filepath.Dir(file), filepath.FromSlash(path))
				info, err := os.Stat(dest)
				if err != nil {
					t.Errorf("%s: broken link %q: %v", rel, target, err)
					continue
				}
				if info.IsDir() {
					continue // directory links have no anchors to check
				}
			}
			if frag == "" {
				continue
			}
			destBody, ok := bodies[dest]
			if !ok {
				if strings.HasSuffix(dest, ".md") {
					t.Errorf("%s: link %q has a fragment but %s was not scanned", rel, target, dest)
				}
				continue // anchors into non-markdown files are not checked
			}
			if !anchors(destBody)[frag] {
				t.Errorf("%s: link %q: no heading in %s slugs to %q", rel, target, filepath.Base(dest), frag)
			}
		}
	}
}
