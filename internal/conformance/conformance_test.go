// Package conformance cross-checks the two transport backends: the same
// algorithm on the same instance must produce the same answer whether the
// ranks are goroutines sharing memory (inproc) or endpoints exchanging frames
// over real localhost sockets (tcp). Where the algorithm is deterministic,
// message counts must agree too — the negative-tag convention keeps the
// runtime's own over-the-wire collective traffic out of the counters on both
// backends.
package conformance

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/dmgm"
	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/mpi/transport"
	"repro/internal/obs"
	"repro/internal/partition"
)

const nRanks = 4

// overTCP runs fn once per rank, each rank owning its own World over a
// localhost TCP mesh — one test-binary stand-in for P processes. fn returns
// the global result on rank 0's world and nil elsewhere (the contract of the
// dmgm *World entry points); overTCP returns rank 0's value.
func overTCP[T any](t *testing.T, p int, fn func(w *mpi.World) (*T, error)) *T {
	t.Helper()
	eps, err := transport.NewLocalTCPCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	worlds := make([]*mpi.World, p)
	for i, ep := range eps {
		w, err := mpi.NewWorld(p, mpi.WithTransport(ep), mpi.WithDeadline(60*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		worlds[i] = w
	}
	results := make([]*T, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := range worlds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = fn(worlds[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", i, err)
		}
	}
	for i, r := range results {
		if (r != nil) != (i == 0) {
			t.Fatalf("result returned on world %d; want rank 0 only", i)
		}
	}
	// Per-tag-family accounting must reconcile on every world, and the
	// runtime's reserved-tag collectives really crossed the wire here.
	var runtime mpi.FamilyStats
	for i, w := range worlds {
		assertFamiliesReconcile(t, w, fmt.Sprintf("tcp world %d", i))
		for _, r := range w.LocalRanks() {
			runtime.Add(w.RankStats(r).ByFamily[mpi.FamilyRuntime])
		}
	}
	if runtime.SentMsgs == 0 || runtime.RecvMsgs == 0 {
		t.Errorf("tcp runtime family saw no collective traffic: %+v", runtime)
	}
	return results[0]
}

// assertFamiliesReconcile checks the tag-family invariant on w's local ranks:
// the non-runtime families must sum exactly to the aggregate counters — every
// user byte attributed to a protocol phase, no byte counted twice.
func assertFamiliesReconcile(t *testing.T, w *mpi.World, label string) {
	t.Helper()
	for _, r := range w.LocalRanks() {
		s := w.RankStats(r)
		got := s.UserFamilyTotals()
		want := mpi.FamilyStats{SentMsgs: s.SentMsgs, SentBytes: s.SentBytes, RecvMsgs: s.RecvMsgs, RecvBytes: s.RecvBytes}
		if got != want {
			t.Errorf("%s rank %d: family totals %+v != aggregates %+v", label, r, got, want)
		}
	}
}

// instances the harness runs; the path graph's strictly increasing weights
// make the matching cascade sequentially, so even its message counts are
// schedule-independent.
type instance struct {
	name          string
	g             *dmgm.Graph
	part          *dmgm.Partition
	deterministic bool // message counts are schedule-independent
}

func buildInstances(t *testing.T) []instance {
	t.Helper()
	grid, err := gen.Grid2D(8, 8, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	gridPart, err := partition.Block1D(grid, nRanks)
	if err != nil {
		t.Fatal(err)
	}
	const pathN = 40
	edges := make([]dmgm.Edge, pathN-1)
	for i := range edges {
		edges[i] = dmgm.Edge{U: dmgm.Vertex(i), V: dmgm.Vertex(i + 1), W: float64(i + 1)}
	}
	path, err := dmgm.NewGraph(pathN, edges)
	if err != nil {
		t.Fatal(err)
	}
	pathPart, err := partition.Block1D(path, nRanks)
	if err != nil {
		t.Fatal(err)
	}
	bfsPart, err := partition.BFS(grid, nRanks, 11)
	if err != nil {
		t.Fatal(err)
	}
	return []instance{
		{"grid-block1d", grid, gridPart, false},
		{"grid-bfs", grid, bfsPart, false},
		{"path-monotone", path, pathPart, true},
	}
}

func TestMatchingConformance(t *testing.T) {
	for _, ins := range buildInstances(t) {
		t.Run(ins.name, func(t *testing.T) {
			opt := dmgm.MatchParallelOptions{Deadline: 60 * time.Second}
			inproc, err := dmgm.MatchParallel(ins.g, ins.part, opt)
			if err != nil {
				t.Fatal(err)
			}
			tcp := overTCP(t, nRanks, func(w *mpi.World) (*dmgm.MatchParallelResult, error) {
				return dmgm.MatchParallelWorld(w, ins.g, ins.part, opt)
			})
			if err := dmgm.VerifyMatching(ins.g, tcp.Mates); err != nil {
				t.Fatal(err)
			}
			for v := range inproc.Mates {
				if inproc.Mates[v] != tcp.Mates[v] {
					t.Fatalf("vertex %d: inproc mate %d, tcp mate %d", v, inproc.Mates[v], tcp.Mates[v])
				}
			}
			if inproc.Weight != tcp.Weight {
				t.Fatalf("weight: inproc %v, tcp %v", inproc.Weight, tcp.Weight)
			}
			// The asynchronous protocol's traffic is timing-dependent in
			// general (REQUEST-skipping races), but on the monotone path the
			// cascade is sequential and the counts must agree exactly.
			if ins.deterministic {
				if inproc.Messages != tcp.Messages || inproc.Bytes != tcp.Bytes {
					t.Fatalf("traffic: inproc %d msgs/%d B, tcp %d msgs/%d B",
						inproc.Messages, inproc.Bytes, tcp.Messages, tcp.Bytes)
				}
			}
		})
	}
}

func TestColoringConformance(t *testing.T) {
	for _, ins := range buildInstances(t) {
		t.Run(ins.name, func(t *testing.T) {
			// One superstep chunk per round makes the speculative coloring
			// fully deterministic — colors, rounds, and message counts —
			// because ghost colors only change in the post-barrier drain.
			opt := dmgm.ColorParallelOptions{
				SuperstepSize: ins.g.NumVertices(),
				Seed:          3,
				Deadline:      60 * time.Second,
			}
			inproc, err := dmgm.ColorParallel(ins.g, ins.part, opt)
			if err != nil {
				t.Fatal(err)
			}
			tcp := overTCP(t, nRanks, func(w *mpi.World) (*dmgm.ColorParallelResult, error) {
				return dmgm.ColorParallelWorld(w, ins.g, ins.part, opt)
			})
			if err := dmgm.VerifyColoring(ins.g, tcp.Colors); err != nil {
				t.Fatal(err)
			}
			for v := range inproc.Colors {
				if inproc.Colors[v] != tcp.Colors[v] {
					t.Fatalf("vertex %d: inproc color %d, tcp color %d", v, inproc.Colors[v], tcp.Colors[v])
				}
			}
			if inproc.NumColors != tcp.NumColors || inproc.Rounds != tcp.Rounds || inproc.Conflicts != tcp.Conflicts {
				t.Fatalf("inproc (colors %d, rounds %d, conflicts %d) vs tcp (%d, %d, %d)",
					inproc.NumColors, inproc.Rounds, inproc.Conflicts,
					tcp.NumColors, tcp.Rounds, tcp.Conflicts)
			}
			if inproc.Messages != tcp.Messages || inproc.Bytes != tcp.Bytes {
				t.Fatalf("traffic: inproc %d msgs/%d B, tcp %d msgs/%d B",
					inproc.Messages, inproc.Bytes, tcp.Messages, tcp.Bytes)
			}
		})
	}
}

func TestDistance2ColoringConformance(t *testing.T) {
	ins := buildInstances(t)[0]
	opt := dmgm.ColorParallelOptions{
		SuperstepSize: ins.g.NumVertices(),
		Seed:          3,
		Deadline:      60 * time.Second,
	}
	inproc, err := dmgm.ColorParallelDistance2(ins.g, ins.part, opt)
	if err != nil {
		t.Fatal(err)
	}
	tcp := overTCP(t, nRanks, func(w *mpi.World) (*dmgm.ColorParallelResult, error) {
		return dmgm.ColorParallelDistance2World(w, ins.g, ins.part, opt)
	})
	if err := dmgm.VerifyColoringDistance2(ins.g, tcp.Colors); err != nil {
		t.Fatal(err)
	}
	for v := range inproc.Colors {
		if inproc.Colors[v] != tcp.Colors[v] {
			t.Fatalf("vertex %d: inproc color %d, tcp color %d", v, inproc.Colors[v], tcp.Colors[v])
		}
	}
	if inproc.NumColors != tcp.NumColors {
		t.Fatalf("inproc %d colors, tcp %d", inproc.NumColors, tcp.NumColors)
	}
}

// TestTracingInvariance checks that observability is purely passive: the
// same instance run with a full observer (tracing + metrics) must produce
// results byte-identical to an unobserved run — matching and coloring alike.
func TestTracingInvariance(t *testing.T) {
	for _, ins := range buildInstances(t) {
		t.Run(ins.name, func(t *testing.T) {
			runMatch := func(opts ...mpi.Option) *dmgm.MatchParallelResult {
				w, err := mpi.NewWorld(nRanks, append([]mpi.Option{mpi.WithDeadline(60 * time.Second)}, opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				res, err := dmgm.MatchParallelWorld(w, ins.g, ins.part, dmgm.MatchParallelOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			obsr := obs.NewObserver(nRanks, 0)
			plain, traced := runMatch(), runMatch(mpi.WithObserver(obsr))
			if fmt.Sprint(plain.Mates) != fmt.Sprint(traced.Mates) || plain.Weight != traced.Weight {
				t.Fatalf("matching differs with tracing on: weight %v vs %v", plain.Weight, traced.Weight)
			}
			if ins.deterministic && (plain.Messages != traced.Messages || plain.Bytes != traced.Bytes) {
				t.Fatalf("matching traffic differs with tracing on: %d/%d vs %d/%d",
					plain.Messages, plain.Bytes, traced.Messages, traced.Bytes)
			}
			// The observer must actually have recorded the run it rode along.
			if len(obsr.Tracer(0).Spans()) == 0 {
				t.Fatal("traced run recorded no spans")
			}

			copt := dmgm.ColorParallelOptions{
				SuperstepSize: ins.g.NumVertices(),
				Seed:          3,
				Deadline:      60 * time.Second,
			}
			runColor := func(opts ...mpi.Option) *dmgm.ColorParallelResult {
				w, err := mpi.NewWorld(nRanks, append([]mpi.Option{mpi.WithDeadline(60 * time.Second)}, opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				res, err := dmgm.ColorParallelWorld(w, ins.g, ins.part, copt)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			cplain, ctraced := runColor(), runColor(mpi.WithObserver(obs.NewObserver(nRanks, 0)))
			if fmt.Sprint(cplain.Colors) != fmt.Sprint(ctraced.Colors) ||
				cplain.NumColors != ctraced.NumColors || cplain.Rounds != ctraced.Rounds ||
				cplain.Messages != ctraced.Messages || cplain.Bytes != ctraced.Bytes {
				t.Fatalf("coloring differs with tracing on: (%d colors, %d rounds, %d msgs) vs (%d, %d, %d)",
					cplain.NumColors, cplain.Rounds, cplain.Messages,
					ctraced.NumColors, ctraced.Rounds, ctraced.Messages)
			}
		})
	}
}

// TestTCPMatchingRepeatable runs the TCP matching twice to confirm the
// harness itself is stable (fresh mesh, same answer).
func TestTCPMatchingRepeatable(t *testing.T) {
	ins := buildInstances(t)[2]
	opt := dmgm.MatchParallelOptions{Deadline: 60 * time.Second}
	run := func() *dmgm.MatchParallelResult {
		return overTCP(t, nRanks, func(w *mpi.World) (*dmgm.MatchParallelResult, error) {
			return dmgm.MatchParallelWorld(w, ins.g, ins.part, opt)
		})
	}
	a, b := run(), run()
	if fmt.Sprint(a.Mates) != fmt.Sprint(b.Mates) || a.Messages != b.Messages {
		t.Fatalf("two tcp runs disagree: %d vs %d messages", a.Messages, b.Messages)
	}
}

// TestTagFamilyReconciliation pins the per-tag-family accounting on the
// inproc backend (overTCP asserts the tcp side on every run above): user
// families sum exactly to the aggregates, the traffic lands in the family the
// protocol says it should, and the runtime family stays silent — inproc
// collectives are shared-memory, nothing crosses a wire.
func TestTagFamilyReconciliation(t *testing.T) {
	ins := buildInstances(t)[0]
	newWorld := func() *mpi.World {
		w, err := mpi.NewWorld(nRanks, mpi.WithDeadline(60*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	w := newWorld()
	if _, err := dmgm.MatchParallelWorld(w, ins.g, ins.part, dmgm.MatchParallelOptions{}); err != nil {
		t.Fatal(err)
	}
	assertFamiliesReconcile(t, w, "inproc match")
	total := w.TotalStats()
	if fam := total.ByFamily[mpi.FamilyMatch]; fam.SentMsgs == 0 || fam.SentBytes != total.SentBytes {
		t.Errorf("matching traffic not attributed to the match family: %+v of %+v", fam, total)
	}
	if rt := total.ByFamily[mpi.FamilyRuntime]; rt != (mpi.FamilyStats{}) {
		t.Errorf("inproc run metered runtime wire traffic: %+v", rt)
	}

	w = newWorld()
	copt := dmgm.ColorParallelOptions{SuperstepSize: ins.g.NumVertices(), Seed: 3, Deadline: 60 * time.Second}
	if _, err := dmgm.ColorParallelWorld(w, ins.g, ins.part, copt); err != nil {
		t.Fatal(err)
	}
	assertFamiliesReconcile(t, w, "inproc color")
	total = w.TotalStats()
	if fam := total.ByFamily[mpi.FamilyColor]; fam.SentMsgs == 0 || fam.SentBytes != total.SentBytes {
		t.Errorf("coloring traffic not attributed to the color family: %+v of %+v", fam, total)
	}
}

// TestOTLPExportInvariance extends the passivity contract to the OTLP
// pipeline: exporting a run to a collector — healthy or unreachable — must
// not change the algorithm's result, and the healthy export must reconcile
// exactly with what the observer recorded.
func TestOTLPExportInvariance(t *testing.T) {
	ins := buildInstances(t)[0]
	run := func(obsr *obs.Observer) *dmgm.MatchParallelResult {
		opts := []mpi.Option{mpi.WithDeadline(60 * time.Second)}
		if obsr != nil {
			opts = append(opts, mpi.WithObserver(obsr))
		}
		w, err := mpi.NewWorld(nRanks, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dmgm.MatchParallelWorld(w, ins.g, ins.part, dmgm.MatchParallelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)

	// Healthy collector: the export reconciles with the observer.
	var mu sync.Mutex
	var spansSeen int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []struct{} `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
		}
		if r.URL.Path == "/v1/traces" && json.NewDecoder(r.Body).Decode(&req) == nil {
			mu.Lock()
			for _, rs := range req.ResourceSpans {
				for _, ss := range rs.ScopeSpans {
					spansSeen += len(ss.Spans)
				}
			}
			mu.Unlock()
		}
		w.Write([]byte("{}")) //nolint:errcheck
	}))
	defer srv.Close()
	obsr := obs.NewObserver(nRanks, 0)
	healthy := run(obsr)
	exp := obs.NewOTLPExporter(srv.URL, obs.OTLPOptions{Identity: obs.OTLPIdentity{RunID: "conf", WorldSize: nRanks}})
	exp.ExportObserver(obsr, []int{0, 1, 2, 3}, 0)
	if err := exp.Close(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	recorded := len(obsr.Driver().Spans())
	for r := 0; r < nRanks; r++ {
		recorded += len(obsr.Tracer(r).Spans())
	}
	mu.Lock()
	if spansSeen != recorded || exp.Dropped() != 0 {
		t.Fatalf("collector saw %d spans, observer holds %d (dropped %d)", spansSeen, recorded, exp.Dropped())
	}
	mu.Unlock()

	// Unreachable collector: the run still matches the unobserved baseline.
	dead := obs.NewOTLPExporter("http://127.0.0.1:1", obs.OTLPOptions{MaxRetries: 1})
	obsr2 := obs.NewObserver(nRanks, 0)
	broken := run(obsr2)
	dead.ExportObserver(obsr2, []int{0, 1, 2, 3}, 0)
	dead.Close(10 * time.Second) //nolint:errcheck // drops are the point
	for name, res := range map[string]*dmgm.MatchParallelResult{"healthy": healthy, "broken": broken} {
		if fmt.Sprint(plain.Mates) != fmt.Sprint(res.Mates) || plain.Weight != res.Weight {
			t.Fatalf("%s export changed the matching: weight %v vs %v", name, plain.Weight, res.Weight)
		}
	}
	if dead.Dropped() == 0 {
		t.Error("unreachable collector must count drops")
	}
}
