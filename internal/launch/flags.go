package launch

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/mpi"
	"repro/internal/mpi/transport"
)

// TransportFlags is the standard transport flag block shared by the cmd/
// binaries: which substrate carries the ranks, and — for the tcp substrate —
// this process's rank and how the job rendezvouses.
type TransportFlags struct {
	Transport string
	Rank      int
	Registry  string
	Peers     string
	Bind      string
	Launch    bool
}

// RegisterFlags installs the transport flag block on the default flag set.
func RegisterFlags() *TransportFlags {
	f := &TransportFlags{}
	flag.StringVar(&f.Transport, "transport", "inproc", "rank substrate: inproc (goroutines in this process) | tcp (one process per rank)")
	flag.IntVar(&f.Rank, "rank", 0, "this process's rank in the tcp job")
	flag.StringVar(&f.Registry, "registry", "", "rank-0 rendezvous address host:port (tcp)")
	flag.StringVar(&f.Peers, "peers", "", "comma-separated per-rank listen addresses (tcp; overrides -registry)")
	flag.StringVar(&f.Bind, "bind", "", "data-listener bind address for this rank (tcp registry mode; default 127.0.0.1:0)")
	flag.BoolVar(&f.Launch, "launch", false, "spawn -p local tcp worker processes of this binary and wait for them")
	return f
}

// Remote reports whether the flags select a wire transport, i.e. whether
// this process hosts only its own rank.
func (f *TransportFlags) Remote() bool { return f.Transport != "inproc" }

// World builds the mpi.World the flags describe: the whole job in-process by
// default, or one tcp endpoint of a multi-process job.
func (f *TransportFlags) World(p int, opts ...mpi.Option) (*mpi.World, error) {
	switch f.Transport {
	case "inproc":
		return mpi.NewWorld(p, opts...)
	case "tcp":
		topt := transport.TCPOptions{Rank: f.Rank, Size: p, Registry: f.Registry, Bind: f.Bind}
		if f.Peers != "" {
			topt.Peers = strings.Split(f.Peers, ",")
		}
		ep, err := transport.NewTCP(topt)
		if err != nil {
			return nil, err
		}
		return mpi.NewWorld(p, append([]mpi.Option{mpi.WithTransport(ep)}, opts...)...)
	default:
		return nil, fmt.Errorf("launch: unknown transport %q (want inproc or tcp)", f.Transport)
	}
}
