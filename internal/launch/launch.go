// Package launch spawns and supervises the worker processes of a local
// multi-process run: the `-launch` mode of the cmd/ binaries re-executes the
// running binary once per rank with the TCP transport flags appended, wires
// the workers together through a freshly reserved rank-0 registry port,
// prefixes their output by rank, and propagates the first non-zero exit
// code. It is the repository's stand-in for `mpirun -np N` on one host.
package launch

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
)

// ReserveLoopbackPort binds an ephemeral localhost port and immediately
// releases it, returning the address for rank 0 to re-bind as its registry.
// The window between release and re-bind is racy in principle; for a
// single-host launcher grabbing ephemeral ports it is harmless in practice,
// and a collision surfaces as a clean bind error, not silent misbehavior.
func ReserveLoopbackPort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// FilterArgs returns args with the named boolean flags removed (any of the
// -name, --name, -name=value spellings). Used to strip `-launch` from the
// inherited command line so workers do not recurse.
func FilterArgs(args []string, dropBool ...string) []string {
	drop := map[string]bool{}
	for _, d := range dropBool {
		drop[d] = true
	}
	out := make([]string, 0, len(args))
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			name := strings.TrimLeft(a, "-")
			if i := strings.IndexByte(name, '='); i >= 0 {
				name = name[:i]
			}
			if drop[name] {
				continue
			}
		}
		out = append(out, a)
	}
	return out
}

// Local re-executes this binary n times as the TCP-transport workers of
// ranks 0..n-1 and supervises them (see Fleet). strip names boolean flags to
// remove from the inherited command line — at minimum the flag that invoked
// the launcher itself.
func Local(n int, strip ...string) int {
	return Fleet(os.Args[0], FilterArgs(os.Args[1:], strip...), n)
}

// Fleet spawns n copies of bin, appending `-transport tcp -rank i -registry
// <addr>` to baseArgs for each rank i, streams their stdout/stderr with a
// `[rank i]` prefix, waits for all of them, and returns the first non-zero
// exit code (0 when every worker succeeded). Later duplicate flags win under
// Go's flag package, so appending is enough to override inherited values.
func Fleet(bin string, baseArgs []string, n int) int {
	registry, err := ReserveLoopbackPort()
	if err != nil {
		fmt.Fprintf(os.Stderr, "launch: reserving registry port: %v\n", err)
		return 1
	}
	codes := make([]int, n)
	var outMu sync.Mutex // one worker line at a time
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		args := append(append([]string(nil), baseArgs...),
			"-transport", "tcp", "-rank", strconv.Itoa(i), "-registry", registry)
		cmd := exec.Command(bin, args...)
		stdout, err := cmd.StdoutPipe()
		if err == nil {
			var stderr io.ReadCloser
			stderr, err = cmd.StderrPipe()
			if err == nil {
				err = cmd.Start()
			}
			if err == nil {
				wg.Add(1)
				go superviseWorker(&wg, &outMu, i, cmd, stdout, stderr, &codes[i])
				continue
			}
		}
		fmt.Fprintf(os.Stderr, "launch: starting rank %d: %v\n", i, err)
		codes[i] = 1
	}
	wg.Wait()
	for _, c := range codes {
		if c != 0 {
			return c
		}
	}
	return 0
}

func superviseWorker(wg *sync.WaitGroup, outMu *sync.Mutex, rank int, cmd *exec.Cmd, stdout, stderr io.Reader, code *int) {
	defer wg.Done()
	var streams sync.WaitGroup
	stream := func(r io.Reader, w io.Writer) {
		defer streams.Done()
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			outMu.Lock()
			fmt.Fprintf(w, "[rank %d] %s\n", rank, sc.Text())
			outMu.Unlock()
		}
	}
	streams.Add(2)
	go stream(stdout, os.Stdout)
	go stream(stderr, os.Stderr)
	streams.Wait() // drain the pipes before Wait closes them
	if err := cmd.Wait(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			*code = ee.ExitCode()
		} else {
			*code = 1
		}
	}
}
