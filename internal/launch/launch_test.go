package launch

import (
	"net"
	"testing"
)

func TestFilterArgs(t *testing.T) {
	in := []string{"-in", "g.bin", "-launch", "--launch", "-launch=true", "-p", "4", "positional", "-x"}
	got := FilterArgs(in, "launch")
	want := []string{"-in", "g.bin", "-p", "4", "positional", "-x"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestReserveLoopbackPort(t *testing.T) {
	addr, err := ReserveLoopbackPort()
	if err != nil {
		t.Fatal(err)
	}
	// The address must be immediately bindable again.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("reserved address %s not bindable: %v", addr, err)
	}
	ln.Close()
}

func TestFleetRunsAndStreams(t *testing.T) {
	// /bin/echo ignores the appended transport flags and exits 0 — this
	// exercises spawn, pipe streaming, and join without a rendezvous.
	if code := Fleet("/bin/echo", []string{"hello"}, 3); code != 0 {
		t.Fatalf("echo fleet exited %d", code)
	}
}

func TestFleetPropagatesExitCode(t *testing.T) {
	if code := Fleet("/bin/sh", []string{"-c", "exit 3"}, 2); code != 3 {
		t.Fatalf("fleet exit code %d, want 3", code)
	}
}
